// Tests of the concurrent serving front end: the bounded MPMC queue and
// streaming latency histogram in isolation, then the Server itself --
// N threads x M mixed-preset queries through Submit are bit-identical to
// serial Engine::TopK, SubmitBatch matches RunBatch, per-worker stats
// merge into correct aggregates, and shutdown (drain and cancel) neither
// hangs nor loses a promise: every queued request resolves, cancelled ones
// with a clean kUnavailable status.
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/cached_engine.h"
#include "common/random.h"
#include "core/engine.h"
#include "result_matchers.h"
#include "server/histogram.h"
#include "server/queue.h"
#include "server/server.h"
#include "shard/sharded_engine.h"
#include "workload/synthetic.h"

namespace prj {
namespace {

const AlgorithmPreset kAllPresets[] = {kCBRR, kCBPA, kTBRR, kTBPA};

std::vector<Relation> MakeRelations(int n, int count, uint64_t seed) {
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = count;
  spec.density = 50;
  spec.seed = seed;
  return GenerateProblem(n, spec);
}

/// Deterministic mixed workload: query points, K and presets all vary.
std::vector<QueryRequest> MakeWorkload(int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<QueryRequest> requests;
  requests.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    QueryRequest req;
    req.query = rng.UniformInCube(2, -1.0, 1.0);
    req.options.k = 1 + i % 9;
    req.options.Apply(kAllPresets[i % 4]);
    requests.push_back(std::move(req));
  }
  return requests;
}

// --------------------------- BoundedQueue ------------------------------ //

TEST(BoundedQueueTest, FifoSingleThread) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) {
    int v = i;
    ASSERT_TRUE(queue.Push(v));
  }
  EXPECT_EQ(queue.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto v = queue.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueueTest, PushBlocksAtCapacityUntilPopped) {
  BoundedQueue<int> queue(2);
  int a = 1, b = 2, c = 3;
  ASSERT_TRUE(queue.Push(a));
  ASSERT_TRUE(queue.Push(b));
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(queue.Push(c));
    third_pushed.store(true);
  });
  // The producer cannot complete until a slot frees up.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_EQ(queue.Pop().value_or(-1), 1);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(queue.Pop().value_or(-1), 2);
  EXPECT_EQ(queue.Pop().value_or(-1), 3);
}

TEST(BoundedQueueTest, CloseWakesBlockedPopper) {
  BoundedQueue<int> queue(4);
  std::atomic<bool> got_nullopt{false};
  std::thread consumer([&] {
    auto v = queue.Pop();
    got_nullopt.store(!v.has_value());
  });
  queue.Close();
  consumer.join();
  EXPECT_TRUE(got_nullopt.load());
}

TEST(BoundedQueueTest, CloseDrainsPendingButRejectsNewPushes) {
  BoundedQueue<int> queue(4);
  int a = 7;
  ASSERT_TRUE(queue.Push(a));
  queue.Close();
  int b = 8;
  EXPECT_FALSE(queue.Push(b));
  EXPECT_EQ(b, 8);  // rejected item left untouched
  EXPECT_EQ(queue.Pop().value_or(-1), 7);  // pending item still delivered
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(BoundedQueueTest, CloseAndDrainReturnsBacklogInOrder) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 4; ++i) {
    int v = i * 10;
    ASSERT_TRUE(queue.Push(v));
  }
  const std::vector<int> drained = queue.CloseAndDrain();
  ASSERT_EQ(drained.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(drained[static_cast<size_t>(i)], i * 10);
  }
  EXPECT_FALSE(queue.Pop().has_value());  // backlog was taken, queue closed
}

TEST(BoundedQueueTest, HighWaterTracksDeepestFill) {
  BoundedQueue<int> queue(16);
  int v = 0;
  queue.Push(v);
  queue.Push(v);
  queue.Push(v);
  (void)queue.Pop();
  (void)queue.Pop();
  queue.Push(v);
  EXPECT_EQ(queue.high_water(), 3u);
}

TEST(BoundedQueueTest, ManyProducersManyConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> queue(8);
  std::vector<std::thread> threads;
  std::atomic<int> consumed{0};
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = queue.Pop()) {
        seen[static_cast<size_t>(*v)].fetch_add(1);
        consumed.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int v = p * kPerProducer + i;
        ASSERT_TRUE(queue.Push(v));
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.Close();
  for (auto& t : threads) t.join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
  EXPECT_LE(queue.high_water(), queue.capacity());
}

// ------------------------- LatencyHistogram ---------------------------- //

TEST(LatencyHistogramTest, EmptyHistogramReportsZero) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.TotalCount(), 0u);
  EXPECT_EQ(hist.Quantile(0.5), 0.0);
  EXPECT_EQ(hist.Quantile(0.99), 0.0);
}

TEST(LatencyHistogramTest, QuantilesWithinBucketResolution) {
  LatencyHistogram hist;
  for (int i = 0; i < 1000; ++i) hist.Record(1e-3);
  EXPECT_EQ(hist.TotalCount(), 1000u);
  // All mass sits in one bucket: every quantile reports that bucket's
  // upper bound, within one bucket width (2^(1/4) ~ 19%) of the sample.
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_GE(hist.Quantile(q), 1e-3);
    EXPECT_LE(hist.Quantile(q), 1e-3 * 1.2);
  }
}

TEST(LatencyHistogramTest, SeparatesFastAndSlowPopulations) {
  LatencyHistogram hist;
  for (int i = 0; i < 99; ++i) hist.Record(1e-4);  // fast bulk
  hist.Record(1e-1);                               // one slow outlier
  EXPECT_LE(hist.Quantile(0.5), 1e-4 * 1.2);
  EXPECT_GE(hist.Quantile(0.995), 1e-1);
  EXPECT_LE(hist.Quantile(0.995), 1e-1 * 1.2);
}

TEST(LatencyHistogramTest, MergeSumsCounts) {
  LatencyHistogram a, b, merged;
  for (int i = 0; i < 50; ++i) a.Record(1e-5);
  for (int i = 0; i < 50; ++i) b.Record(1e-2);
  merged.MergeFrom(a);
  merged.MergeFrom(b);
  EXPECT_EQ(merged.TotalCount(), 100u);
  EXPECT_LE(merged.Quantile(0.25), 1e-5 * 1.2);
  EXPECT_GE(merged.Quantile(0.75), 1e-2);
}

TEST(LatencyHistogramTest, ExtremeSamplesLandInBoundaryBuckets) {
  LatencyHistogram hist;
  hist.Record(0.0);
  // Defensive: negatives and NaN clamp into the first bucket, huge samples
  // into the overflow bucket -- never UB, never a lost count.
  hist.Record(-1.0);
  hist.Record(std::nan(""));
  hist.Record(1e9);
  EXPECT_EQ(hist.TotalCount(), 4u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1e9),
            LatencyHistogram::kNumBuckets - 1);
  // Bucket bounds are monotone, so quantiles stay ordered.
  EXPECT_LE(hist.Quantile(0.5), hist.Quantile(1.0));
}

// ------------------------------ Server --------------------------------- //

class ServerTest : public ::testing::Test {
 protected:
  ServerTest()
      : relations_(MakeRelations(2, 60, /*seed=*/7)),
        scoring_(1.0, 1.0, 1.0),
        engine_(Engine::Create(relations_, AccessKind::kDistance, &scoring_)) {
    EXPECT_TRUE(engine_.ok()) << engine_.status().ToString();
  }

  const Engine& engine() { return *engine_; }

  std::vector<Relation> relations_;
  SumLogEuclideanScoring scoring_;
  Result<Engine> engine_;
};

// The tentpole contract: queries answered through the concurrent server
// are bit-identical to serial Engine::TopK on the same engine.
TEST_F(ServerTest, SubmittedResultsMatchSerialTopK) {
  ServerOptions opts;
  opts.num_workers = 4;
  Server server(&engine(), opts);
  const auto workload = MakeWorkload(32, /*seed=*/123);

  std::vector<std::future<QueryResult>> futures;
  for (const QueryRequest& req : workload) {
    futures.push_back(server.Submit(req));
  }

  for (size_t i = 0; i < workload.size(); ++i) {
    QueryResult got = futures[i].get();
    ASSERT_TRUE(got.ok()) << got.status.ToString();
    ExecStats serial_stats;
    auto serial = engine().TopK(workload[i].query, workload[i].options,
                                &serial_stats);
    ASSERT_TRUE(serial.ok());
    ExpectBitIdentical(got.combinations, *serial,
                       "query " + std::to_string(i));
    EXPECT_EQ(got.stats.sum_depths, serial_stats.sum_depths) << i;
    EXPECT_EQ(got.stats.depths, serial_stats.depths) << i;
  }
}

// N submitter threads x M mixed-preset queries each, all in flight at
// once: every thread's results must match its own serial baseline.
TEST_F(ServerTest, ConcurrentSubmittersGetBitIdenticalResults) {
  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 16;
  ServerOptions opts;
  opts.num_workers = 4;
  opts.queue_capacity = 8;  // small: exercises Submit back-pressure too
  Server server(&engine(), opts);

  std::vector<std::thread> submitters;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      const auto workload =
          MakeWorkload(kQueriesPerThread, /*seed=*/1000 + t);
      std::vector<std::future<QueryResult>> futures;
      for (const QueryRequest& req : workload) {
        futures.push_back(server.Submit(req));
      }
      for (size_t i = 0; i < workload.size(); ++i) {
        QueryResult got = futures[i].get();
        auto serial = engine().TopK(workload[i].query, workload[i].options);
        if (!got.ok() || !serial.ok() ||
            got.combinations.size() != serial->size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t r = 0; r < serial->size(); ++r) {
          if (got.combinations[r].score != (*serial)[r].score) {
            mismatches.fetch_add(1);
            break;
          }
          for (size_t m = 0; m < (*serial)[r].tuples.size(); ++m) {
            if (got.combinations[r].tuples[m].id !=
                (*serial)[r].tuples[m].id) {
              mismatches.fetch_add(1);
              r = serial->size();
              break;
            }
          }
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.queries_served,
            static_cast<uint64_t>(kThreads * kQueriesPerThread));
  EXPECT_EQ(stats.queries_failed, 0u);
  EXPECT_EQ(stats.queries_rejected, 0u);
}

TEST_F(ServerTest, SubmitBatchMatchesEngineRunBatch) {
  ServerOptions opts;
  opts.num_workers = 3;
  Server server(&engine(), opts);
  const auto workload = MakeWorkload(20, /*seed=*/55);

  const auto serial = engine().RunBatch(workload);
  const auto concurrent = server.SubmitBatch(workload);
  ASSERT_EQ(concurrent.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(concurrent[i].ok(), serial[i].ok()) << i;
    ExpectBitIdentical(concurrent[i].combinations, serial[i].combinations,
                       "batch entry " + std::to_string(i));
    EXPECT_EQ(concurrent[i].stats.sum_depths, serial[i].stats.sum_depths) << i;
  }
}

TEST_F(ServerTest, PerQueryFailuresAreIsolatedAndCounted) {
  ServerOptions opts;
  opts.num_workers = 2;
  Server server(&engine(), opts);

  std::vector<QueryRequest> requests(3);
  requests[0].query = Vec(2, 0.0);
  requests[0].options.k = 3;
  requests[1].query = Vec(2, 0.0);
  requests[1].options.k = 0;  // invalid K
  requests[2].query = Vec{0.0, 0.0, 0.0};  // wrong dimension
  requests[2].options.k = 3;

  const auto results = server.SubmitBatch(requests);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[0].combinations.size(), 3u);
  EXPECT_EQ(results[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(results[2].status.code(), StatusCode::kInvalidArgument);

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.queries_served, 3u);
  EXPECT_EQ(stats.queries_failed, 2u);
}

// Stats from the per-worker slots sum to the serial accounting: total
// sumDepths matches a serial RunBatch, latency quantiles are populated,
// and the queue high-water mark reflects actual queuing.
TEST_F(ServerTest, StatsSumAcrossWorkers) {
  const auto workload = MakeWorkload(24, /*seed=*/321);
  uint64_t expected_depths = 0;
  for (const QueryResult& qr : engine().RunBatch(workload)) {
    ASSERT_TRUE(qr.ok());
    expected_depths += qr.stats.sum_depths;
  }

  ServerOptions opts;
  opts.num_workers = 4;
  Server server(&engine(), opts);
  const auto results = server.SubmitBatch(workload);
  for (const QueryResult& qr : results) ASSERT_TRUE(qr.ok());

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.queries_served, workload.size());
  EXPECT_EQ(stats.queries_failed, 0u);
  EXPECT_EQ(stats.queries_rejected, 0u);
  EXPECT_EQ(stats.sum_depths, expected_depths);
  EXPECT_GT(stats.latency_p50_seconds, 0.0);
  EXPECT_GE(stats.latency_p99_seconds, stats.latency_p50_seconds);
  EXPECT_GE(stats.queue_high_water, 1u);
  EXPECT_LE(stats.queue_high_water, ServerOptions{}.queue_capacity);
}

// ------------------- all three QueryEngine implementations -------------- //

// The tentpole contract of the interface extraction: Server runs
// unmodified over the monolithic Engine, the ShardedEngine, and a
// CachedEngine stacked on the sharded one -- concurrent results stay
// bit-identical to the serial monolithic baseline in every case, and the
// engine-side metadata (fan-out, cache counters) surfaces in ServerStats.
TEST_F(ServerTest, ServesIdenticallyOverAllQueryEngineImplementations) {
  ShardedEngineOptions sh_opts;
  sh_opts.partitions_per_relation = 3;
  auto sharded = ShardedEngine::Create(relations_, AccessKind::kDistance,
                                       &scoring_, sh_opts);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  CachedEngine cached(&*sharded);

  // Repeat the workload twice so the cached run gets guaranteed hits.
  auto workload = MakeWorkload(16, /*seed=*/2024);
  const auto repeat = workload;
  workload.insert(workload.end(), repeat.begin(), repeat.end());
  const auto baseline = engine().RunBatch(workload);

  struct Impl {
    const QueryEngine* impl;
    const char* name;
    size_t fan_out;
  };
  const Impl impls[] = {
      {&engine(), "engine", 1},
      {&*sharded, "sharded", sharded->num_shards()},
      {&cached, "cached(sharded)", sharded->num_shards()},
  };
  for (const Impl& impl : impls) {
    ServerOptions opts;
    opts.num_workers = 4;
    Server server(impl.impl, opts);
    const auto results = server.SubmitBatch(workload);
    ASSERT_EQ(results.size(), baseline.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << impl.name << " " << i;
      ExpectBitIdentical(results[i].combinations, baseline[i].combinations,
                         std::string(impl.name) + " query " +
                             std::to_string(i));
    }
    const ServerStats stats = server.Stats();
    EXPECT_EQ(stats.queries_served, workload.size()) << impl.name;
    EXPECT_EQ(stats.shard_fan_out, impl.fan_out) << impl.name;
  }

  // Only the cached stack reports cache traffic, as per-server deltas:
  // this fresh server starts at zero even though the cache is already
  // warm from the run above, and every query it serves is a hit.
  {
    ServerOptions opts;
    opts.num_workers = 2;
    Server server(&cached, opts);
    (void)server.SubmitBatch(workload);
    const ServerStats stats = server.Stats();
    EXPECT_EQ(stats.cache_hits, workload.size());
    EXPECT_EQ(stats.cache_misses, 0u);
    // And zero cost: every query was answered without a single pull.
    EXPECT_EQ(stats.sum_depths, 0u);
  }
  // The uncached server reported no cache traffic at all.
  {
    ServerOptions opts;
    opts.num_workers = 2;
    Server server(&engine(), opts);
    (void)server.SubmitBatch(MakeWorkload(4, /*seed=*/9));
    const ServerStats stats = server.Stats();
    EXPECT_EQ(stats.cache_hits, 0u);
    EXPECT_EQ(stats.cache_misses, 0u);
    EXPECT_EQ(stats.cache_evictions, 0u);
    EXPECT_EQ(stats.shard_fan_out, 1u);
  }
}

// A server over a parallel, pruned sharded engine: concurrent submitters
// drive concurrent per-query scatters through the shared worker pool, the
// results stay bit-identical to the serial monolithic engine, and the new
// scatter accounting (shards_pruned, gather_seconds) surfaces in
// ServerStats. Localized STR-tiled data guarantees pruning fires.
TEST(ServerShardScatterTest, ParallelPrunedScatterUnderConcurrentServing) {
  std::vector<Relation> rels;
  for (int r = 0; r < 2; ++r) {
    Relation rel("grid" + std::to_string(r), 2);
    for (int i = 0; i < 16; ++i) {
      for (int j = 0; j < 16; ++j) {
        rel.Add(i * 16 + j, 0.4 + 0.002 * ((i + 2 * j + r) % 9),
                Vec{i / 15.0, j / 15.0});
      }
    }
    rels.push_back(std::move(rel));
  }
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto mono = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(mono.ok());

  ShardedEngineOptions sh_opts;
  sh_opts.partitions_per_relation = 4;  // 2x2 tiles, fan-out 16
  sh_opts.scheme = PartitionScheme::kStrTile;
  sh_opts.scatter_threads = 3;
  auto sharded =
      ShardedEngine::Create(rels, AccessKind::kDistance, &scoring, sh_opts);
  ASSERT_TRUE(sharded.ok());

  // Corner-localized queries: far tiles cannot beat the near top-K.
  Rng rng(55);
  std::vector<QueryRequest> workload;
  for (int i = 0; i < 24; ++i) {
    QueryRequest req;
    req.query = rng.UniformInCube(2, 0.0, 0.15);
    req.options.k = 1 + i % 5;
    req.options.Apply(kAllPresets[i % 4]);
    workload.push_back(std::move(req));
  }
  const auto baseline = mono->RunBatch(workload);

  ServerOptions opts;
  opts.num_workers = 4;
  Server server(&*sharded, opts);
  const auto results = server.SubmitBatch(workload);
  ASSERT_EQ(results.size(), baseline.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << i;
    ExpectBitIdentical(results[i].combinations, baseline[i].combinations,
                       "query " + std::to_string(i));
    EXPECT_GT(results[i].stats.scatter_threads, 0u) << i;
  }
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.queries_served, workload.size());
  EXPECT_GT(stats.shards_pruned, 0u);
  EXPECT_GE(stats.gather_seconds, 0.0);
}

// ----------------------------- shutdown -------------------------------- //

TEST_F(ServerTest, ShutdownDrainCompletesEveryQueuedQuery) {
  ServerOptions opts;
  opts.num_workers = 1;  // force queuing
  Server server(&engine(), opts);
  const auto workload = MakeWorkload(12, /*seed=*/77);
  std::vector<std::future<QueryResult>> futures;
  for (const QueryRequest& req : workload) {
    futures.push_back(server.Submit(req));
  }
  server.Shutdown(Server::DrainMode::kDrain);
  for (auto& f : futures) {
    QueryResult qr = f.get();
    EXPECT_TRUE(qr.ok()) << qr.status.ToString();
  }
  EXPECT_EQ(server.Stats().queries_served, workload.size());
}

// The satellite requirement: shutdown with work still queued resolves the
// backlog with a clean error instead of hanging (or dropping promises).
TEST_F(ServerTest, ShutdownCancelFailsQueuedQueriesCleanly) {
  // A single worker over a heavier engine: the first query occupies it for
  // long enough that the rest are still queued when we cancel.
  const auto big_rels = MakeRelations(2, 5000, /*seed=*/13);
  auto big_engine = Engine::Create(big_rels, AccessKind::kDistance, &scoring_);
  ASSERT_TRUE(big_engine.ok());

  ServerOptions opts;
  opts.num_workers = 1;
  Server server(&*big_engine, opts);

  Rng rng(9);
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 9; ++i) {
    QueryRequest req;
    req.query = rng.UniformInCube(2, -1.0, 1.0);
    req.options.k = 50;
    req.options.Apply(kTBPA);
    futures.push_back(server.Submit(req));
  }
  server.Shutdown(Server::DrainMode::kCancel);

  size_t completed = 0, cancelled = 0;
  for (auto& f : futures) {
    QueryResult qr = f.get();  // must not hang
    if (qr.ok()) {
      ++completed;
    } else {
      EXPECT_EQ(qr.status.code(), StatusCode::kUnavailable)
          << qr.status.ToString();
      ++cancelled;
    }
  }
  EXPECT_EQ(completed + cancelled, 9u);
  EXPECT_GE(cancelled, 1u);  // the backlog cannot have fully drained

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.queries_served, completed);
  EXPECT_EQ(stats.queries_rejected, cancelled);
}

TEST_F(ServerTest, SubmitAfterShutdownResolvesImmediatelyWithUnavailable) {
  Server server(&engine());
  server.Shutdown();
  QueryRequest req;
  req.query = Vec(2, 0.0);
  req.options.k = 3;
  auto future = server.Submit(req);
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const QueryResult qr = future.get();
  EXPECT_EQ(qr.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(server.Stats().queries_rejected, 1u);

  // SubmitBatch after shutdown: every entry resolves with the same error.
  const auto results = server.SubmitBatch(MakeWorkload(3, /*seed=*/1));
  ASSERT_EQ(results.size(), 3u);
  for (const QueryResult& r : results) {
    EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
  }
}

TEST_F(ServerTest, ShutdownIsIdempotentAndDestructorIsSafe) {
  std::future<QueryResult> future;
  {
    Server server(&engine());
    QueryRequest req;
    req.query = Vec(2, 0.1);
    req.options.k = 2;
    future = server.Submit(req);
    server.Shutdown();
    server.Shutdown(Server::DrainMode::kCancel);  // no-op, must not hang
  }  // destructor after explicit shutdown: also a no-op
  EXPECT_TRUE(future.get().ok());
}

}  // namespace
}  // namespace prj
