// The sharded scatter-gather engine: partitioner units, the exactness
// property (ShardedEngine bit-identical to the unsharded Engine across
// random partition counts, all four presets, both backends, both
// partitioners, and adversarial tie-heavy inputs), and the per-shard
// ExecStats aggregation rules (counters sum, wall times max, completed
// ANDs) so sharded stats are never silently zero.
#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "access/partition.h"
#include "common/random.h"
#include "core/engine.h"
#include "result_matchers.h"
#include "shard/sharded_engine.h"
#include "workload/synthetic.h"

namespace prj {
namespace {

const AlgorithmPreset kAllPresets[] = {kCBRR, kCBPA, kTBRR, kTBPA};

struct BackendCase {
  AccessKind kind;
  SourceBackend backend;
  const char* name;
};

const BackendCase kBackendCases[] = {
    {AccessKind::kDistance, SourceBackend::kPresorted, "distance/presorted"},
    {AccessKind::kDistance, SourceBackend::kRTree, "distance/rtree"},
    {AccessKind::kScore, SourceBackend::kPresorted, "score"},
};

const PartitionScheme kSchemes[] = {PartitionScheme::kHash,
                                    PartitionScheme::kStrTile};

const char* SchemeName(PartitionScheme scheme) {
  return scheme == PartitionScheme::kHash ? "hash" : "str-tile";
}

std::vector<Relation> MakeRelations(int n, int count, uint64_t seed) {
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = count;
  spec.density = 50;
  spec.seed = seed;
  return GenerateProblem(n, spec);
}

/// Adversarial tie factory: scores from a 4-value grid and coordinates on
/// a coarse integer lattice, so many distinct combinations share exact
/// aggregate scores and exact distances -- the merge must still reproduce
/// the unsharded tie order.
std::vector<Relation> MakeTieHeavyRelations(int n, int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Relation> rels;
  for (int r = 0; r < n; ++r) {
    Relation rel("tie" + std::to_string(r), 2);
    for (int i = 0; i < count; ++i) {
      const double score = 0.25 * (1 + static_cast<int>(rng.NextBounded(4)));
      const Vec x{static_cast<double>(rng.NextBounded(4)),
                  static_cast<double>(rng.NextBounded(4))};
      rel.Add(i, score, x);
    }
    rels.push_back(std::move(rel));
  }
  return rels;
}

// ---------------------------- partitioners ----------------------------- //

TEST(PartitionerTest, HashAssignmentIsCompleteDeterministicAndBalanced) {
  const auto rels = MakeRelations(1, 500, /*seed=*/3);
  HashPartitioner hash;
  for (uint32_t parts : {1u, 2u, 3u, 8u}) {
    const auto a = hash.Assign(rels[0], parts);
    ASSERT_EQ(a.size(), rels[0].size());
    std::vector<size_t> sizes(parts, 0);
    for (uint32_t p : a) {
      ASSERT_LT(p, parts);
      ++sizes[p];
    }
    // Determinism: a second run gives the identical assignment.
    EXPECT_EQ(hash.Assign(rels[0], parts), a);
    // Balance: no part is pathologically loaded (splitmix over 500 ids).
    for (size_t s : sizes) {
      EXPECT_GT(s, rels[0].size() / (4 * parts)) << parts << " parts";
    }
  }
}

TEST(PartitionerTest, StrTileAssignmentCoversExactlyAndSplitsEvenly) {
  const auto rels = MakeRelations(1, 499, /*seed=*/5);
  StrTilePartitioner str;
  for (uint32_t parts : {1u, 2u, 4u, 5u, 6u, 9u}) {
    const auto a = str.Assign(rels[0], parts);
    ASSERT_EQ(a.size(), rels[0].size());
    std::vector<size_t> sizes(parts, 0);
    for (uint32_t p : a) {
      ASSERT_LT(p, parts);
      ++sizes[p];
    }
    EXPECT_EQ(str.Assign(rels[0], parts), a);
    // Rank-based splits: every tile within one tuple of the ideal size at
    // each of the two levels, so bounded by a loose +/- 2 of n/parts.
    for (size_t s : sizes) {
      EXPECT_NEAR(static_cast<double>(s),
                  static_cast<double>(rels[0].size()) / parts, 2.0)
          << parts << " parts";
    }
  }
}

TEST(PartitionerTest, PartitionRelationPreservesTuplesAndMetadata) {
  Relation rel("things", 2, /*sigma_max=*/0.75);
  for (int i = 0; i < 37; ++i) {
    rel.Add(100 + i, 0.25 + 0.01 * i, Vec{0.1 * i, -0.2 * i});
  }
  for (PartitionScheme scheme : kSchemes) {
    const auto parts = PartitionRelation(rel, *MakePartitioner(scheme), 4);
    ASSERT_EQ(parts.size(), 4u);
    size_t total = 0;
    std::set<int64_t> seen;
    for (const Relation& part : parts) {
      EXPECT_EQ(part.dim(), rel.dim());
      // sigma_max is tightened to the largest score the part holds: never
      // above the parent's a-priori ceiling, exactly the in-part maximum
      // for non-empty parts (every part is non-empty here: 37 tuples over
      // 4 rank-balanced parts).
      ASSERT_FALSE(part.empty());
      double in_part_max = 0.0;
      for (const Tuple& t : part.tuples()) {
        in_part_max = std::max(in_part_max, t.score);
      }
      EXPECT_EQ(part.sigma_max(), in_part_max) << part.name();
      EXPECT_LE(part.sigma_max(), rel.sigma_max()) << part.name();
      EXPECT_TRUE(part.Validate().ok()) << part.name();
      total += part.size();
      for (const Tuple& t : part.tuples()) {
        EXPECT_TRUE(seen.insert(t.id).second) << "duplicate id " << t.id;
        // The tuple is the original, verbatim.
        const Tuple& orig = rel.tuple(static_cast<size_t>(t.id - 100));
        EXPECT_EQ(t.score, orig.score);
        EXPECT_EQ(t.x, orig.x);
      }
    }
    EXPECT_EQ(total, rel.size()) << SchemeName(scheme);
  }
}

TEST(PartitionerTest, EmptyPartsKeepParentSigmaMax) {
  // One tuple over 4 parts: three parts are empty and have no in-part
  // score to tighten with, so they keep the parent ceiling (0 would fail
  // relation validation and give a degenerate bound).
  Relation rel("sparse", 2, /*sigma_max=*/0.6);
  rel.Add(7, 0.4, Vec{0.0, 0.0});
  const auto parts = PartitionRelation(rel, *MakePartitioner(kSchemes[0]), 4);
  ASSERT_EQ(parts.size(), 4u);
  for (const Relation& part : parts) {
    if (part.empty()) {
      EXPECT_EQ(part.sigma_max(), rel.sigma_max()) << part.name();
    } else {
      EXPECT_EQ(part.sigma_max(), 0.4) << part.name();
    }
    EXPECT_TRUE(part.Validate().ok()) << part.name();
  }
}

// Regression: the slab count once came from a truncated floating-point
// sqrt, which a libm rounding 49 to 6.999... would silently degrade to a
// 1 x 49 split. The integer root must be exact for perfect squares and
// fall back to the largest divisor (1 for primes) otherwise.
TEST(PartitionerTest, StrTileSlabCountUsesExactIntegerRoot) {
  // Perfect squares: root x root exactly.
  EXPECT_EQ(StrTileSlabCount(4, 2), 2u);
  EXPECT_EQ(StrTileSlabCount(9, 2), 3u);
  EXPECT_EQ(StrTileSlabCount(16, 2), 4u);
  EXPECT_EQ(StrTileSlabCount(25, 2), 5u);
  EXPECT_EQ(StrTileSlabCount(49, 2), 7u);
  EXPECT_EQ(StrTileSlabCount(121, 2), 11u);
  EXPECT_EQ(StrTileSlabCount(1024, 2), 32u);
  EXPECT_EQ(StrTileSlabCount(3969, 2), 63u);  // 63^2, near kMaxFanOut
  // Non-squares: largest divisor not above the root.
  EXPECT_EQ(StrTileSlabCount(12, 2), 3u);
  EXPECT_EQ(StrTileSlabCount(18, 2), 3u);
  EXPECT_EQ(StrTileSlabCount(50, 2), 5u);
  // Primes have no divisor in [2, root]: pure tiles.
  EXPECT_EQ(StrTileSlabCount(2, 2), 1u);
  EXPECT_EQ(StrTileSlabCount(7, 2), 1u);
  EXPECT_EQ(StrTileSlabCount(13, 2), 1u);
  EXPECT_EQ(StrTileSlabCount(1, 2), 1u);
  // 1-d relations always use pure slabs along the only axis.
  EXPECT_EQ(StrTileSlabCount(49, 1), 49u);
}

// Behavioral check of the same regression on a 14 x 14 integer grid split
// 49 ways: a 7 x 7 tiling gives every part an x[0] extent of at most one
// grid step (each slab is exactly two columns); the degraded 1 x 49 split
// would hand parts points from four different columns.
TEST(PartitionerTest, StrTilePerfectSquarePartsFormAGrid) {
  Relation rel("grid", 2);
  for (int i = 0; i < 14; ++i) {
    for (int j = 0; j < 14; ++j) {
      rel.Add(i + 14 * j, 0.5,
              Vec{static_cast<double>(i), static_cast<double>(j)});
    }
  }
  StrTilePartitioner str;
  const auto assignment = str.Assign(rel, 49);
  std::vector<double> x_lo(49, 1e9), x_hi(49, -1e9);
  for (size_t t = 0; t < assignment.size(); ++t) {
    x_lo[assignment[t]] = std::min(x_lo[assignment[t]], rel.tuple(t).x[0]);
    x_hi[assignment[t]] = std::max(x_hi[assignment[t]], rel.tuple(t).x[0]);
  }
  for (uint32_t p = 0; p < 49; ++p) {
    EXPECT_LE(x_hi[p] - x_lo[p], 1.0) << "part " << p << " spans columns";
  }
}

// Prime part counts degenerate to one slab: tiles then split the single
// x[1]-sorted run, so each part stays within one grid step along x[1].
TEST(PartitionerTest, StrTilePrimePartsTileTheSecondAxis) {
  Relation rel("grid", 2);
  for (int i = 0; i < 14; ++i) {
    for (int j = 0; j < 14; ++j) {
      rel.Add(i + 14 * j, 0.5,
              Vec{static_cast<double>(i), static_cast<double>(j)});
    }
  }
  StrTilePartitioner str;
  const auto assignment = str.Assign(rel, 7);
  std::vector<double> y_lo(7, 1e9), y_hi(7, -1e9);
  for (size_t t = 0; t < assignment.size(); ++t) {
    ASSERT_LT(assignment[t], 7u);
    y_lo[assignment[t]] = std::min(y_lo[assignment[t]], rel.tuple(t).x[1]);
    y_hi[assignment[t]] = std::max(y_hi[assignment[t]], rel.tuple(t).x[1]);
  }
  for (uint32_t p = 0; p < 7; ++p) {
    EXPECT_LE(y_hi[p] - y_lo[p], 1.0) << "part " << p << " spans rows";
  }
}

TEST(PartitionerTest, EmptyRelationYieldsEmptyParts) {
  Relation rel("empty", 2);
  for (PartitionScheme scheme : kSchemes) {
    const auto parts = PartitionRelation(rel, *MakePartitioner(scheme), 3);
    ASSERT_EQ(parts.size(), 3u);
    for (const Relation& part : parts) EXPECT_TRUE(part.empty());
  }
}

// ------------------------- construction rules -------------------------- //

TEST(ShardedEngineCreateTest, RejectsBadSetups) {
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const auto rels = MakeRelations(2, 20, /*seed=*/1);

  EXPECT_EQ(ShardedEngine::Create(rels, AccessKind::kDistance, nullptr)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ShardedEngine::Create({}, AccessKind::kDistance, &scoring)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  ShardedEngineOptions opts;
  opts.partitions_per_relation = 0;
  EXPECT_EQ(ShardedEngine::Create(rels, AccessKind::kDistance, &scoring, opts)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // 128^2 = 16384 > kMaxFanOut.
  opts.partitions_per_relation = 128;
  EXPECT_EQ(ShardedEngine::Create(rels, AccessKind::kDistance, &scoring, opts)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  const SumLogCosineScoring cosine(1, 1, 1, Vec{1.0, 0.0});
  EXPECT_EQ(ShardedEngine::Create(rels, AccessKind::kDistance, &cosine)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(ShardedEngineCreateTest, FanOutIsPartitionsToThePowerRelations) {
  const SumLogEuclideanScoring scoring(1, 1, 1);
  for (int n : {1, 2, 3}) {
    const auto rels = MakeRelations(n, 120, /*seed=*/n);
    ShardedEngineOptions opts;
    opts.partitions_per_relation = 3;
    auto sharded =
        ShardedEngine::Create(rels, AccessKind::kDistance, &scoring, opts);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    // All parts are non-empty at this size, so no shard is skipped.
    EXPECT_EQ(sharded->num_shards(),
              static_cast<size_t>(std::pow(3, n)));
    EXPECT_EQ(sharded->fan_out(), sharded->num_shards());
    EXPECT_EQ(sharded->num_relations(), static_cast<size_t>(n));
    EXPECT_EQ(sharded->dim(), 2);
  }
}

TEST(ShardedEngineCreateTest, EmptyPartsShedShardsAndEmptyRelationsServe) {
  const SumLogEuclideanScoring scoring(1, 1, 1);
  // 3 tuples into 4 parts: at least one part per relation is empty, so the
  // fan-out must shrink below 4^2 yet queries still work.
  Relation a("a", 2);
  Relation b("b", 2);
  for (int i = 0; i < 3; ++i) {
    a.Add(i, 0.5, Vec{0.1 * i, 0.0});
    b.Add(i, 0.5, Vec{0.0, 0.1 * i});
  }
  ShardedEngineOptions opts;
  opts.partitions_per_relation = 4;
  auto sharded =
      ShardedEngine::Create({a, b}, AccessKind::kDistance, &scoring, opts);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_LT(sharded->num_shards(), 16u);
  EXPECT_GE(sharded->num_shards(), 1u);

  ProxRJOptions q_opts;
  q_opts.k = 20;
  auto result = sharded->TopK(Vec(2, 0.0), q_opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 9u);  // the full 3x3 cross product

  // An entirely empty relation: every shard is skipped; the sharded
  // engine answers the (empty) query exactly like the unsharded one.
  Relation empty("empty", 2);
  auto degenerate = ShardedEngine::Create({a, empty}, AccessKind::kDistance,
                                          &scoring, opts);
  ASSERT_TRUE(degenerate.ok()) << degenerate.status().ToString();
  EXPECT_EQ(degenerate->num_shards(), 0u);
  ExecStats stats;
  auto none = degenerate->TopK(Vec(2, 0.0), q_opts, &stats);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  EXPECT_TRUE(stats.completed);
  EXPECT_TRUE(std::isinf(stats.final_bound) && stats.final_bound < 0);
}

TEST(ShardedEngineTest, RequestValidationMatchesEngine) {
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const auto rels = MakeRelations(2, 30, /*seed=*/9);
  auto sharded = ShardedEngine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(sharded.ok());

  ProxRJOptions bad;
  bad.k = 0;
  ExecStats stats;
  stats.sum_depths = 42;  // dirty: must be reset on the failure path too
  EXPECT_EQ(sharded->TopK(Vec(2, 0.0), bad, &stats).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(stats.sum_depths, 0u);

  ProxRJOptions ok;
  ok.k = 3;
  EXPECT_EQ(sharded->TopK(Vec{0.0, 0.0, 0.0}, ok).status().code(),
            StatusCode::kInvalidArgument);
}

// ----------------------- the exactness property ------------------------ //

// The tentpole acceptance criterion: across random partition counts, all
// four presets, all backends, both partitioners, and both uniform and
// tie-heavy data, ShardedEngine::TopK is bit-identical (scores, ids,
// order) to the unsharded Engine::TopK, and consumes no fewer total
// depths than... nothing -- only the results are contractual.
TEST(ShardedExactnessTest, BitIdenticalToUnshardedAcrossTheGrid) {
  Rng rng(2026);
  for (const bool tie_heavy : {false, true}) {
    for (int n : {2, 3}) {
      const int count = n == 3 ? 30 : 70;
      const auto rels = tie_heavy
                            ? MakeTieHeavyRelations(n, count, /*seed=*/n + 10)
                            : MakeRelations(n, count, /*seed=*/n);
      const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);

      for (const BackendCase& bc : kBackendCases) {
        Engine::Options eng_opts;
        eng_opts.backend = bc.backend;
        auto engine = Engine::Create(rels, bc.kind, &scoring, eng_opts);
        ASSERT_TRUE(engine.ok()) << engine.status().ToString();

        for (PartitionScheme scheme : kSchemes) {
          // Random partition count per cell, 1..5.
          const uint32_t parts = 1 + static_cast<uint32_t>(rng.NextBounded(5));
          ShardedEngineOptions opts;
          opts.partitions_per_relation = parts;
          opts.scheme = scheme;
          opts.engine = eng_opts;
          auto sharded = ShardedEngine::Create(rels, bc.kind, &scoring, opts);
          ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

          for (int call = 0; call < 4; ++call) {
            const AlgorithmPreset& preset = kAllPresets[call];
            const Vec q = rng.UniformInCube(2, -1.0, 1.0);
            ProxRJOptions q_opts;
            q_opts.k = 1 + static_cast<int>(rng.NextBounded(12));
            q_opts.Apply(preset);

            const std::string label =
                std::string(tie_heavy ? "ties/" : "uniform/") + bc.name +
                "/" + SchemeName(scheme) + "/p" + std::to_string(parts) +
                "/n" + std::to_string(n) + "/" + preset.name;

            auto expected = engine->TopK(q, q_opts);
            ASSERT_TRUE(expected.ok()) << label;
            ExecStats sharded_stats;
            auto got = sharded->TopK(q, q_opts, &sharded_stats);
            ASSERT_TRUE(got.ok()) << label;
            ExpectBitIdentical(*got, *expected, label);
            EXPECT_TRUE(sharded_stats.completed) << label;
          }
        }
      }
    }
  }
}

// K beyond the full cross product: every shard exhausts, the gather must
// still return exactly the unsharded order of the entire cross product.
TEST(ShardedExactnessTest, KLargerThanCrossProduct) {
  const auto rels = MakeTieHeavyRelations(2, 5, /*seed=*/77);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok());
  ShardedEngineOptions opts;
  opts.partitions_per_relation = 3;
  auto sharded =
      ShardedEngine::Create(rels, AccessKind::kDistance, &scoring, opts);
  ASSERT_TRUE(sharded.ok());

  ProxRJOptions q_opts;
  q_opts.k = 100;
  auto expected = engine->TopK(Vec(2, 1.0), q_opts);
  auto got = sharded->TopK(Vec(2, 1.0), q_opts);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(expected->size(), 25u);
  ExpectBitIdentical(*got, *expected, "exhaustive");
}

// Paged shard engines (EngineOptions::block_size) stay exact too.
TEST(ShardedExactnessTest, BlockedShardEnginesStayExact) {
  const auto rels = MakeRelations(2, 40, /*seed=*/21);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok());

  ShardedEngineOptions opts;
  opts.partitions_per_relation = 2;
  opts.engine.block_size = 3;
  auto sharded =
      ShardedEngine::Create(rels, AccessKind::kDistance, &scoring, opts);
  ASSERT_TRUE(sharded.ok());

  ProxRJOptions q_opts;
  q_opts.k = 7;
  q_opts.Apply(kTBPA);
  auto expected = engine->TopK(Vec{0.2, -0.3}, q_opts);
  auto got = sharded->TopK(Vec{0.2, -0.3}, q_opts);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(got.ok());
  ExpectBitIdentical(*got, *expected, "blocked");
}

// ------------------- pruning and parallel scatter ----------------------- //

// The parallel scatter (worker pool + best-bound-first claiming + shared
// K-heap gather) must stay bit-identical to the unsharded engine across
// backends, partitioners, presets and tie-heavy data -- runs under the
// TSan CI job like the rest of this suite.
TEST(ShardedExactnessTest, ParallelScatterBitIdentical) {
  Rng rng(777);
  for (const bool tie_heavy : {false, true}) {
    const auto rels = tie_heavy ? MakeTieHeavyRelations(2, 60, /*seed=*/5)
                                : MakeRelations(2, 60, /*seed=*/6);
    const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
    for (const BackendCase& bc : kBackendCases) {
      Engine::Options eng_opts;
      eng_opts.backend = bc.backend;
      auto engine = Engine::Create(rels, bc.kind, &scoring, eng_opts);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      for (PartitionScheme scheme : kSchemes) {
        ShardedEngineOptions opts;
        opts.partitions_per_relation = 3;
        opts.scheme = scheme;
        opts.engine = eng_opts;
        opts.scatter_threads = 4;
        auto sharded = ShardedEngine::Create(rels, bc.kind, &scoring, opts);
        ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
        for (int call = 0; call < 4; ++call) {
          const AlgorithmPreset& preset = kAllPresets[call];
          const Vec q = rng.UniformInCube(2, -1.0, 1.0);
          ProxRJOptions q_opts;
          q_opts.k = 1 + static_cast<int>(rng.NextBounded(12));
          q_opts.Apply(preset);
          const std::string label = std::string(tie_heavy ? "ties/" : "uni/") +
                                    bc.name + "/" + SchemeName(scheme) + "/" +
                                    preset.name;
          auto expected = engine->TopK(q, q_opts);
          ASSERT_TRUE(expected.ok()) << label;
          ExecStats stats;
          auto got = sharded->TopK(q, q_opts, &stats);
          ASSERT_TRUE(got.ok()) << label;
          ExpectBitIdentical(*got, *expected, label);
          EXPECT_TRUE(stats.completed) << label;
          EXPECT_GT(stats.scatter_threads, 0u) << label;  // really parallel
        }
      }
    }
  }
}

// The adaptive parallel scatter: when the scout shard's threshold prunes
// the remaining fan-out down to a couple of survivors, the query finishes
// inline on the calling thread (scatter_threads == 1); with pruning off
// every shard must run, so the helpers always launch (scatter_threads ==
// the worker count). Bit-identity across the modes is covered by
// ParallelScatterBitIdentical -- this test pins the mode choice itself.
TEST(ShardedPruningTest, AdaptiveScatterChoosesInlineVsParallel) {
  // Two tight clusters 10 apart: STR tiles separate them, so for a query
  // inside one cluster the scout shard's K-th score kills every
  // cross-cluster shard (distance penalty ~10 vs ~0.3).
  std::vector<Relation> rels;
  for (int j = 0; j < 2; ++j) {
    Relation r("R" + std::to_string(j), 2, 1.0);
    Rng rng(100 + static_cast<uint64_t>(j));
    for (int i = 0; i < 30; ++i) {
      const double c = i < 15 ? 0.0 : 10.0;
      r.Add(i, 0.1 + 0.9 * rng.NextDouble(),
            Vec{c + rng.Uniform(-0.3, 0.3), c + rng.Uniform(-0.3, 0.3)});
    }
    rels.push_back(std::move(r));
  }
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  ShardedEngineOptions opts;
  opts.partitions_per_relation = 2;
  opts.scheme = PartitionScheme::kStrTile;
  opts.scatter_threads = 4;
  auto sharded =
      ShardedEngine::Create(rels, AccessKind::kDistance, &scoring, opts);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ASSERT_EQ(sharded->num_shards(), 4u);

  ProxRJOptions q_opts;
  q_opts.k = 3;
  {
    ExecStats stats;
    auto got = sharded->TopK(Vec{0.0, 0.0}, q_opts, &stats);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(stats.scatter_threads, 1u);  // adaptive inline fallback
    EXPECT_GE(stats.shards_pruned, 2u);
  }
  {
    ShardedEngineOptions no_prune = opts;
    no_prune.prune = false;
    auto all_shards =
        ShardedEngine::Create(rels, AccessKind::kDistance, &scoring, no_prune);
    ASSERT_TRUE(all_shards.ok());
    ExecStats stats;
    auto got = all_shards->TopK(Vec{0.0, 0.0}, q_opts, &stats);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(stats.scatter_threads, 4u);  // every shard runs: full fan-out
    // And the two engines agree bit for bit regardless of mode.
    auto pruned_res = sharded->TopK(Vec{0.0, 0.0}, q_opts);
    ASSERT_TRUE(pruned_res.ok());
    ExpectBitIdentical(*got, *pruned_res, "adaptive vs full fan-out");
  }
}

// ShardUpperBound is admissible: no combination a shard can produce
// scores above the shard's corner bound over its partitions' MBRs.
TEST(ShardedPruningTest, ShardUpperBoundDominatesEveryCombination) {
  const auto rels = MakeRelations(2, 40, /*seed=*/12);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  ShardedEngineOptions opts;
  opts.partitions_per_relation = 3;
  opts.scheme = PartitionScheme::kStrTile;
  auto sharded =
      ShardedEngine::Create(rels, AccessKind::kDistance, &scoring, opts);
  ASSERT_TRUE(sharded.ok());

  Rng rng(99);
  ProxRJOptions q_opts;
  q_opts.k = 10000;  // exhaust every shard: all combinations materialize
  for (int call = 0; call < 3; ++call) {
    const Vec q = rng.UniformInCube(2, -1.5, 1.5);
    for (size_t s = 0; s < sharded->num_shards(); ++s) {
      const double bound = sharded->ShardUpperBound(s, q);
      auto all = sharded->shard(s).TopK(q, q_opts);
      ASSERT_TRUE(all.ok());
      for (const ResultCombination& combo : *all) {
        EXPECT_LE(combo.score, bound) << "shard " << s;
      }
    }
  }
}

// A query localized in one corner of STR-tiled data: far tiles' corner
// bounds cannot beat the K-th score from the near tiles, so whole shards
// are skipped -- and the answer is still bit-identical to the unsharded
// engine. The acceptance scenario for shards_pruned > 0.
TEST(ShardedPruningTest, FarQueryPrunesShardsUnderStrTiles) {
  // A 20 x 20 grid per relation on [0, 1]^2: STR tiles become real
  // spatial cells, so distance to the query separates the shards.
  std::vector<Relation> rels;
  for (int r = 0; r < 2; ++r) {
    Relation rel("grid" + std::to_string(r), 2);
    for (int i = 0; i < 20; ++i) {
      for (int j = 0; j < 20; ++j) {
        rel.Add(i * 20 + j, 0.5 + 0.001 * ((i + j + r) % 7),
                Vec{i / 19.0, j / 19.0});
      }
    }
    rels.push_back(std::move(rel));
  }
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto unsharded = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(unsharded.ok());

  for (const BackendCase& bc : kBackendCases) {
    Engine::Options eng_opts;
    eng_opts.backend = bc.backend;
    auto engine = Engine::Create(rels, bc.kind, &scoring, eng_opts);
    ASSERT_TRUE(engine.ok());
    ShardedEngineOptions opts;
    opts.partitions_per_relation = 4;  // 2 x 2 tiles, fan-out 16
    opts.scheme = PartitionScheme::kStrTile;
    opts.engine = eng_opts;
    auto sharded = ShardedEngine::Create(rels, bc.kind, &scoring, opts);
    ASSERT_TRUE(sharded.ok());
    ASSERT_EQ(sharded->num_shards(), 16u);

    const Vec q{0.05, 0.05};  // deep in the lower-left tile
    ProxRJOptions q_opts;
    q_opts.k = 3;
    q_opts.Apply(kTBPA);
    auto expected = engine->TopK(q, q_opts);
    ASSERT_TRUE(expected.ok());
    ExecStats stats;
    auto got = sharded->TopK(q, q_opts, &stats);
    ASSERT_TRUE(got.ok());
    ExpectBitIdentical(*got, *expected, bc.name);
    EXPECT_GT(stats.shards_pruned, 0u) << bc.name;
    EXPECT_LT(stats.shards_pruned, 16u) << bc.name;  // the near shard ran
    EXPECT_TRUE(stats.completed) << bc.name;
  }
}

// Pruning off visits -- and accounts -- every shard.
TEST(ShardedPruningTest, PruningDisabledVisitsEveryShard) {
  const auto rels = MakeRelations(2, 60, /*seed=*/41);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok());
  ShardedEngineOptions opts;
  opts.partitions_per_relation = 3;
  opts.scheme = PartitionScheme::kStrTile;
  opts.prune = false;
  auto sharded =
      ShardedEngine::Create(rels, AccessKind::kDistance, &scoring, opts);
  ASSERT_TRUE(sharded.ok());

  ProxRJOptions q_opts;
  q_opts.k = 5;
  ExecStats stats;
  auto got = sharded->TopK(Vec{0.0, 0.0}, q_opts, &stats);
  auto expected = engine->TopK(Vec{0.0, 0.0}, q_opts);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(expected.ok());
  ExpectBitIdentical(*got, *expected, "prune off");
  EXPECT_EQ(stats.shards_pruned, 0u);
  EXPECT_EQ(stats.scatter_threads, 0u);  // sequential by default
}

// A traced query must keep the documented trace contract -- every shard's
// execution, concatenated in shard order -- so it runs sequentially with
// pruning off even on an engine configured for parallel pruned scatter.
TEST(ShardedPruningTest, TracedQueriesScatterSequentiallyUnpruned) {
  const auto rels = MakeRelations(2, 50, /*seed=*/23);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  ShardedEngineOptions opts;
  opts.partitions_per_relation = 2;
  opts.scheme = PartitionScheme::kStrTile;
  opts.scatter_threads = 4;
  auto sharded =
      ShardedEngine::Create(rels, AccessKind::kDistance, &scoring, opts);
  ASSERT_TRUE(sharded.ok());

  ExecTrace trace;
  ProxRJOptions q_opts;
  q_opts.k = 4;
  q_opts.trace = &trace;
  ExecStats stats;
  auto traced = sharded->TopK(Vec{0.2, 0.1}, q_opts, &stats);
  ASSERT_TRUE(traced.ok());
  EXPECT_GT(trace.size(), 0u);
  EXPECT_EQ(stats.scatter_threads, 0u);
  EXPECT_EQ(stats.shards_pruned, 0u);

  // Same answer as the untraced (parallel, pruned) path.
  q_opts.trace = nullptr;
  auto untraced = sharded->TopK(Vec{0.2, 0.1}, q_opts);
  ASSERT_TRUE(untraced.ok());
  ExpectBitIdentical(*traced, *untraced, "traced vs untraced");
}

// -------------------------- stats aggregation -------------------------- //

namespace {

ExecStats FreshAggregate() {
  ExecStats agg;
  agg.depths.assign(2, 0);
  agg.completed = true;
  agg.final_bound = -std::numeric_limits<double>::infinity();
  return agg;
}

std::pair<ExecStats, ExecStats> TwoShardStats() {
  ExecStats a;
  a.depths = {3, 4};
  a.sum_depths = 7;
  a.total_seconds = 0.5;
  a.bound_seconds = 0.2;
  a.dominance_seconds = 0.1;
  a.combinations_formed = 11;
  a.bound_stats.bound_updates = 5;
  a.bound_stats.qp_solves = 2;
  a.bound_stats.lp_solves = 1;
  a.bound_stats.partials_total = 9;
  a.bound_stats.partials_dominated = 4;
  a.final_bound = 1.25;
  a.completed = true;

  ExecStats b = a;
  b.depths = {10, 1};
  b.sum_depths = 11;
  b.total_seconds = 0.25;
  b.bound_seconds = 0.3;
  b.dominance_seconds = 0.05;
  b.final_bound = -2.0;
  b.completed = false;  // one incomplete shard poisons the aggregate
  return {a, b};
}

void ExpectCountersSummed(const ExecStats& agg) {
  EXPECT_EQ(agg.depths, (std::vector<size_t>{13, 5}));
  EXPECT_EQ(agg.sum_depths, 18u);
  EXPECT_EQ(agg.combinations_formed, 22u);
  EXPECT_EQ(agg.bound_stats.bound_updates, 10u);
  EXPECT_EQ(agg.bound_stats.qp_solves, 4u);
  EXPECT_EQ(agg.bound_stats.lp_solves, 2u);
  EXPECT_EQ(agg.bound_stats.partials_total, 18u);
  EXPECT_EQ(agg.bound_stats.partials_dominated, 8u);
  EXPECT_EQ(agg.final_bound, 1.25);
  EXPECT_FALSE(agg.completed);
}

}  // namespace

// The sequential scatter runs shards back to back on one thread, so wall
// times SUM -- maxing (the old behavior) under-reported the real latency
// by up to the fan-out factor.
TEST(ShardStatsTest, SequentialScatterSumsWallTimes) {
  ExecStats agg = FreshAggregate();
  const auto [a, b] = TwoShardStats();
  AggregateShardStats(a, ScatterMode::kSequential, &agg);
  AggregateShardStats(b, ScatterMode::kSequential, &agg);
  ExpectCountersSummed(agg);
  EXPECT_DOUBLE_EQ(agg.total_seconds, 0.75);
  EXPECT_DOUBLE_EQ(agg.bound_seconds, 0.5);
  EXPECT_DOUBLE_EQ(agg.dominance_seconds, 0.15);
}

// The parallel scatter's latency is the slowest shard: wall times MAX.
TEST(ShardStatsTest, ParallelScatterMaxesWallTimes) {
  ExecStats agg = FreshAggregate();
  const auto [a, b] = TwoShardStats();
  AggregateShardStats(a, ScatterMode::kParallel, &agg);
  AggregateShardStats(b, ScatterMode::kParallel, &agg);
  ExpectCountersSummed(agg);
  EXPECT_EQ(agg.total_seconds, 0.5);
  EXPECT_EQ(agg.bound_seconds, 0.3);
  EXPECT_EQ(agg.dominance_seconds, 0.1);
}

// End to end: the aggregate a sharded TopK reports equals the sum of the
// stats of running each shard engine individually -- so sharded stats are
// real accounting, not silently zero. Pruning is off so every shard
// really runs (the pruned path is accounted separately in shards_pruned).
TEST(ShardStatsTest, TopKAggregateMatchesPerShardRuns) {
  const auto rels = MakeRelations(2, 80, /*seed=*/33);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  ShardedEngineOptions opts;
  opts.partitions_per_relation = 3;
  opts.prune = false;
  auto sharded =
      ShardedEngine::Create(rels, AccessKind::kDistance, &scoring, opts);
  ASSERT_TRUE(sharded.ok());
  ASSERT_EQ(sharded->num_shards(), 9u);

  const Vec q{0.1, 0.4};
  ProxRJOptions q_opts;
  q_opts.k = 8;
  q_opts.Apply(kTBPA);

  ExecStats aggregate;
  ASSERT_TRUE(sharded->TopK(q, q_opts, &aggregate).ok());

  size_t sum_depths = 0;
  std::vector<size_t> depths(2, 0);
  uint64_t combinations = 0, bound_updates = 0;
  bool completed = true;
  for (size_t s = 0; s < sharded->num_shards(); ++s) {
    ExecStats st;
    ASSERT_TRUE(sharded->shard(s).TopK(q, q_opts, &st).ok());
    sum_depths += st.sum_depths;
    for (size_t j = 0; j < st.depths.size(); ++j) depths[j] += st.depths[j];
    combinations += st.combinations_formed;
    bound_updates += st.bound_stats.bound_updates;
    completed = completed && st.completed;
  }
  EXPECT_GT(aggregate.sum_depths, 0u);
  EXPECT_EQ(aggregate.sum_depths, sum_depths);
  EXPECT_EQ(aggregate.depths, depths);
  EXPECT_EQ(aggregate.combinations_formed, combinations);
  EXPECT_EQ(aggregate.bound_stats.bound_updates, bound_updates);
  EXPECT_EQ(aggregate.completed, completed);
  EXPECT_GE(aggregate.total_seconds, 0.0);
}

// Metadata surfaced through the QueryEngine interface.
TEST(ShardedEngineTest, InterfaceMetadata) {
  const auto rels = MakeRelations(2, 40, /*seed=*/8);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  ShardedEngineOptions opts;
  opts.partitions_per_relation = 2;
  auto sharded =
      ShardedEngine::Create(rels, AccessKind::kScore, &scoring, opts);
  ASSERT_TRUE(sharded.ok());
  const QueryEngine& iface = *sharded;
  EXPECT_EQ(iface.kind(), AccessKind::kScore);
  EXPECT_EQ(iface.dim(), 2);
  EXPECT_EQ(iface.num_relations(), 2u);
  EXPECT_EQ(iface.fan_out(), 4u);
  // No cache layer here: counters are all zero.
  const CacheCounters cc = iface.cache_counters();
  EXPECT_EQ(cc.hits + cc.misses + cc.evictions, 0u);

  // RunBatch through the interface works (inherited implementation).
  std::vector<QueryRequest> reqs(2);
  reqs[0].query = Vec(2, 0.0);
  reqs[0].options.k = 2;
  reqs[0].options.bound = BoundKind::kCorner;
  reqs[1].query = Vec(2, 0.1);
  reqs[1].options.k = 0;  // invalid, isolated
  const auto batch = iface.RunBatch(reqs);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_TRUE(batch[0].ok());
  EXPECT_EQ(batch[1].status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace prj
