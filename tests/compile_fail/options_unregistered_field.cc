// Negative-compile test: a ProxRJOptions-shaped struct with a field that
// has no PRJ_OPTION_FIELDS row must fail OptionsFieldsAllRegistered.
//
// This models exactly the bug the registry exists to prevent -- adding an
// option field without deciding whether it participates in the canonical
// request key. If this file ever compiles, the registry's static_assert
// has lost its teeth and CachedEngine could serve stale hits for requests
// differing in the unregistered field.
//
// Expected diagnostic (matched by the CTest harness):
//   "not registered in PRJ_OPTION_FIELDS"
#include "core/executor.h"

namespace prj {

struct RogueOptions {
  PRJ_OPTION_FIELDS(PRJ_OPTION_DECLARE_FIELD)

  /// Deliberately NOT in the registry: the field the checker must catch.
  int rogue_knob = 0;
};

static_assert(
    OptionsFieldsAllRegistered<RogueOptions>(),
    "RogueOptions field is not registered in PRJ_OPTION_FIELDS: classify "
    "it KEY or EXEMPT");

}  // namespace prj

int main() { return 0; }
