// Negative-compile test (clang only): writing a PRJ_GUARDED_BY member
// without holding its mutex must be rejected by the Thread Safety
// Analysis. If this file ever compiles under clang, the annotation
// plumbing (common/thread_annotations.h + the prj::Mutex capability
// wrappers) has come apart and none of the lock contracts in src/ are
// being checked.
//
// Expected diagnostic (matched by the CTest harness):
//   "writing variable 'value_' requires holding mutex 'mu_'"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  // BUG (deliberate): touches value_ with mu_ not held.
  void Increment() { ++value_; }

  int Read() {
    prj::MutexLock lock(mu_);
    return value_;
  }

 private:
  prj::Mutex mu_;
  int value_ PRJ_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return counter.Read();
}
