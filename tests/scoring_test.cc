// Tests for the aggregation functions of §2, anchored to the paper's
// Table 1 golden scores, plus the top-K output buffer.
#include <cmath>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/scoring.h"
#include "core/topk.h"
#include "paper_fixture.h"

namespace prj {
namespace {

using testing_fixture::Table1Query;
using testing_fixture::Table1Relations;
using testing_fixture::Table1Scores;
using testing_fixture::Table1Scoring;

TEST(SumLogEuclideanTest, ReproducesAllTable1Scores) {
  const auto rels = Table1Relations();
  const auto scoring = Table1Scoring();
  const Vec q = Table1Query();
  for (const auto& row : Table1Scores()) {
    const std::vector<const Tuple*> combo = {
        &rels[0].tuple(static_cast<size_t>(row.i1)),
        &rels[1].tuple(static_cast<size_t>(row.i2)),
        &rels[2].tuple(static_cast<size_t>(row.i3))};
    EXPECT_NEAR(scoring.CombinationScore(q, combo), row.score, 0.05)
        << "combo (" << row.i1 << "," << row.i2 << "," << row.i3 << ")";
  }
}

TEST(SumLogEuclideanTest, Table1OrderingMatchesPaper) {
  // Table 1 lists the 8 combinations in decreasing score order; the
  // brute-force oracle must reproduce exactly that ranking.
  const auto rows = Table1Scores();
  const auto top = BruteForceTopK(Table1Relations(), Table1Scoring(),
                                  Table1Query(), 8);
  ASSERT_EQ(top.size(), 8u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(top[i].tuples[0].id, rows[i].i1) << "rank " << i;
    EXPECT_EQ(top[i].tuples[1].id, rows[i].i2) << "rank " << i;
    EXPECT_EQ(top[i].tuples[2].id, rows[i].i3) << "rank " << i;
    EXPECT_NEAR(top[i].score, rows[i].score, 0.05);
  }
}

TEST(SumLogEuclideanTest, GiMonotonicity) {
  const SumLogEuclideanScoring s(1.0, 2.0, 3.0);
  // Non-decreasing in sigma.
  EXPECT_LT(s.ProximityWeightedScore(0, 0.5, 1.0, 1.0),
            s.ProximityWeightedScore(0, 0.9, 1.0, 1.0));
  // Non-increasing in the query distance.
  EXPECT_GT(s.ProximityWeightedScore(0, 0.5, 1.0, 1.0),
            s.ProximityWeightedScore(0, 0.5, 2.0, 1.0));
  // Non-increasing in the centroid distance.
  EXPECT_GT(s.ProximityWeightedScore(0, 0.5, 1.0, 1.0),
            s.ProximityWeightedScore(0, 0.5, 1.0, 2.0));
}

TEST(SumLogEuclideanTest, WeightsScaleTerms) {
  const SumLogEuclideanScoring s(2.0, 3.0, 5.0);
  // g = 2*ln(sigma) - 3*dq^2 - 5*dmu^2.
  EXPECT_DOUBLE_EQ(s.ProximityWeightedScore(0, std::exp(1.0), 2.0, 1.0),
                   2.0 - 12.0 - 5.0);
}

TEST(SumLogEuclideanTest, CentroidIsMean) {
  const SumLogEuclideanScoring s(1, 1, 1);
  const Vec a{0.0, 0.0}, b{2.0, 4.0}, c{4.0, -1.0};
  const Vec mu = s.Centroid({&a, &b, &c});
  EXPECT_TRUE(mu.ApproxEquals(Vec{2.0, 1.0}));
}

TEST(SumLogEuclideanTest, AggregateIsSum) {
  const SumLogEuclideanScoring s(1, 1, 1);
  EXPECT_DOUBLE_EQ(s.Aggregate({1.0, -2.0, 0.5}), -0.5);
}

TEST(SumLogEuclideanTest, SingleRelationCentroidIsSelf) {
  // n = 1: the centroid equals the tuple location, so the proximity term
  // w.r.t. the centroid vanishes.
  const SumLogEuclideanScoring s(1, 1, 1);
  Tuple t{0, 1.0, Vec{3.0, 4.0}};
  EXPECT_NEAR(s.CombinationScore(Vec{0.0, 0.0}, {&t}), -25.0, 1e-12);
}

TEST(SumLogCosineTest, DissimilarityBasics) {
  EXPECT_NEAR(
      SumLogCosineScoring::CosineDissimilarity(Vec{1.0, 0.0}, Vec{2.0, 0.0}),
      0.0, 1e-12);
  EXPECT_NEAR(
      SumLogCosineScoring::CosineDissimilarity(Vec{1.0, 0.0}, Vec{0.0, 3.0}),
      1.0, 1e-12);
  EXPECT_NEAR(
      SumLogCosineScoring::CosineDissimilarity(Vec{1.0, 0.0}, Vec{-1.0, 0.0}),
      2.0, 1e-12);
}

TEST(SumLogCosineTest, ScoresPreferAlignedVectors) {
  const Vec q{1.0, 0.0};
  const SumLogCosineScoring s(1.0, 1.0, 1.0, q);
  Tuple aligned{0, 0.9, Vec{5.0, 0.1}};
  Tuple off{1, 0.9, Vec{-1.0, 4.0}};
  Tuple anchor{2, 0.9, Vec{2.0, 0.0}};
  EXPECT_GT(s.CombinationScore(q, {&aligned, &anchor}),
            s.CombinationScore(q, {&off, &anchor}));
}

TEST(SumLogCosineTest, NotEuclidean) {
  const SumLogCosineScoring s(1, 1, 1, Vec{1.0, 0.0});
  EXPECT_FALSE(s.euclidean_metric());
  EXPECT_EQ(s.scoring_kind(), ScoringKind::kOther);
}

// ----------------------------- TopKBuffer ----------------------------- //

Combination MakeCombo(std::vector<uint32_t> pos, double score) {
  Combination c;
  c.positions = std::move(pos);
  c.score = score;
  return c;
}

TEST(TopKBufferTest, KeepsBestK) {
  TopKBuffer buf(2);
  buf.Offer(MakeCombo({0}, 1.0));
  buf.Offer(MakeCombo({1}, 3.0));
  buf.Offer(MakeCombo({2}, 2.0));
  const auto sorted = buf.SortedDescending();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_DOUBLE_EQ(sorted[0].score, 3.0);
  EXPECT_DOUBLE_EQ(sorted[1].score, 2.0);
}

TEST(TopKBufferTest, KthScoreSentinelUntilFull) {
  TopKBuffer buf(3);
  EXPECT_TRUE(std::isinf(buf.KthScore()));
  EXPECT_LT(buf.KthScore(), 0);
  buf.Offer(MakeCombo({0}, 1.0));
  buf.Offer(MakeCombo({1}, 2.0));
  EXPECT_TRUE(std::isinf(buf.KthScore()));
  buf.Offer(MakeCombo({2}, 3.0));
  EXPECT_DOUBLE_EQ(buf.KthScore(), 1.0);
}

TEST(TopKBufferTest, RejectsWorseThanKth) {
  TopKBuffer buf(1);
  buf.Offer(MakeCombo({0}, 5.0));
  EXPECT_FALSE(buf.Offer(MakeCombo({1}, 4.0)));
  EXPECT_TRUE(buf.Offer(MakeCombo({2}, 6.0)));
  EXPECT_DOUBLE_EQ(buf.KthScore(), 6.0);
}

TEST(TopKBufferTest, TieBreakLexicographic) {
  TopKBuffer buf(2);
  buf.Offer(MakeCombo({5, 0}, 1.0));
  buf.Offer(MakeCombo({1, 7}, 1.0));
  buf.Offer(MakeCombo({0, 9}, 1.0));
  const auto sorted = buf.SortedDescending();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].positions, (std::vector<uint32_t>{0, 9}));
  EXPECT_EQ(sorted[1].positions, (std::vector<uint32_t>{1, 7}));
}

TEST(TopKBufferTest, ManyOffersKeepHeapConsistent) {
  TopKBuffer buf(10);
  for (int i = 0; i < 1000; ++i) {
    buf.Offer(MakeCombo({static_cast<uint32_t>(i)},
                        std::fmod(i * 37.0, 101.0)));
  }
  const auto sorted = buf.SortedDescending();
  ASSERT_EQ(sorted.size(), 10u);
  for (size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_GE(sorted[i - 1].score, sorted[i].score);
  }
  EXPECT_DOUBLE_EQ(buf.KthScore(), sorted.back().score);
}

TEST(CombinationBetterTest, TotalOrder) {
  const Combination a = MakeCombo({0, 1}, 2.0);
  const Combination b = MakeCombo({0, 2}, 2.0);
  const Combination c = MakeCombo({0, 0}, 1.0);
  EXPECT_TRUE(CombinationBetter(a, b));
  EXPECT_FALSE(CombinationBetter(b, a));
  EXPECT_TRUE(CombinationBetter(a, c));
  EXPECT_FALSE(CombinationBetter(a, a));
}

}  // namespace
}  // namespace prj
