// Tests for the workload generators: density/skew semantics of the
// synthetic generator (Appendix D.1) and the simulated city datasets
// (Appendix D.2 substitution).
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "workload/cities.h"
#include "workload/synthetic.h"

namespace prj {
namespace {

TEST(SyntheticTest, AutoModeIsUnitVolumeWithRhoTuples) {
  // Appendix D.1: fixed unit-volume domain, so the relation size is rho.
  SyntheticSpec spec;
  spec.dim = 5;
  spec.density = 73.0;
  spec.count = 0;
  EXPECT_EQ(EffectiveCount(spec), 73);
  EXPECT_NEAR(CubeSide(spec), 1.0, 1e-12);
  const Relation rel = GenerateUniformRelation(spec, "R");
  EXPECT_EQ(rel.size(), 73u);
  for (const Tuple& t : rel.tuples()) {
    for (int i = 0; i < 5; ++i) {
      EXPECT_GE(t.x[i], -0.5);
      EXPECT_LT(t.x[i], 0.5);
    }
  }
}

TEST(SyntheticTest, CubeSideRealizesDensity) {
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = 5000;
  spec.density = 50.0;
  const double side = CubeSide(spec);
  EXPECT_NEAR(spec.count / (side * side), 50.0, 1e-9);
}

TEST(SyntheticTest, CubeSideHighDimensional) {
  SyntheticSpec spec;
  spec.dim = 16;
  spec.count = 4000;
  spec.density = 50.0;
  EXPECT_NEAR(std::pow(CubeSide(spec), 16.0), 80.0, 1e-9);
}

TEST(SyntheticTest, TuplesLieInTheCubeWithValidScores) {
  SyntheticSpec spec;
  spec.dim = 3;
  spec.count = 500;
  spec.density = 20.0;
  spec.seed = 7;
  const Relation rel = GenerateUniformRelation(spec, "R");
  ASSERT_TRUE(rel.Validate().ok());
  EXPECT_EQ(rel.size(), 500u);
  const double half = CubeSide(spec) / 2.0;
  for (const Tuple& t : rel.tuples()) {
    EXPECT_GT(t.score, 0.0);
    EXPECT_LE(t.score, 1.0);
    for (int i = 0; i < 3; ++i) {
      EXPECT_GE(t.x[i], -half);
      EXPECT_LT(t.x[i], half);
    }
  }
}

TEST(SyntheticTest, SameSeedSameData) {
  SyntheticSpec spec;
  spec.seed = 123;
  spec.count = 50;
  const Relation a = GenerateUniformRelation(spec, "A");
  const Relation b = GenerateUniformRelation(spec, "B");
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.tuple(i).score, b.tuple(i).score);
    EXPECT_TRUE(a.tuple(i).x == b.tuple(i).x);
  }
}

TEST(SyntheticTest, DifferentSeedsDifferentData) {
  SyntheticSpec a_spec, b_spec;
  a_spec.seed = 1;
  b_spec.seed = 2;
  a_spec.count = b_spec.count = 20;
  const Relation a = GenerateUniformRelation(a_spec, "A");
  const Relation b = GenerateUniformRelation(b_spec, "B");
  int same = 0;
  for (size_t i = 0; i < a.size(); ++i) same += (a.tuple(i).x == b.tuple(i).x);
  EXPECT_EQ(same, 0);
}

TEST(SyntheticTest, ProblemHasDistinctRelations) {
  SyntheticSpec spec;
  spec.seed = 5;
  spec.count = 30;
  const auto rels = GenerateProblem(3, spec);
  ASSERT_EQ(rels.size(), 3u);
  EXPECT_NE(rels[0].tuple(0).x, rels[1].tuple(0).x);
  EXPECT_NE(rels[1].tuple(0).x, rels[2].tuple(0).x);
  for (const auto& r : rels) EXPECT_TRUE(r.Validate().ok());
}

TEST(SyntheticTest, SkewChangesDensitiesGeometrically) {
  // With skew s, relation 1 is generated s times denser than relation 2.
  // Same tuple count -> the cube of R1 is smaller by factor s^(1/d) per
  // side. Verify via the bounding box of the generated points.
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = 2000;
  spec.density = 50.0;
  spec.seed = 8;
  const auto rels = GenerateProblem(2, spec, /*skew=*/4.0);
  auto extent = [](const Relation& r) {
    double lo = 1e300, hi = -1e300;
    for (const Tuple& t : r.tuples()) {
      lo = std::min(lo, t.x[0]);
      hi = std::max(hi, t.x[0]);
    }
    return hi - lo;
  };
  // rho1/rho2 = 4 -> side ratio = sqrt(sqrt(4)*sqrt(4)) = 2 in 2-D.
  EXPECT_NEAR(extent(rels[1]) / extent(rels[0]), 2.0, 0.1);
}

TEST(SyntheticTest, SkewOneIsSymmetric) {
  SyntheticSpec spec;
  spec.count = 1000;
  spec.seed = 9;
  const auto rels = GenerateProblem(2, spec, 1.0);
  // Equal densities: bounding boxes of the two relations nearly coincide.
  auto extent = [](const Relation& r) {
    double lo = 1e300, hi = -1e300;
    for (const Tuple& t : r.tuples()) {
      lo = std::min(lo, t.x[0]);
      hi = std::max(hi, t.x[0]);
    }
    return hi - lo;
  };
  EXPECT_NEAR(extent(rels[1]) / extent(rels[0]), 1.0, 0.05);
}

TEST(CitiesTest, FiveCitiesExist) {
  EXPECT_EQ(CityCodes().size(), 5u);
  std::set<std::string> codes(CityCodes().begin(), CityCodes().end());
  EXPECT_TRUE(codes.count("SF"));
  EXPECT_TRUE(codes.count("NY"));
  EXPECT_TRUE(codes.count("BO"));
  EXPECT_TRUE(codes.count("DA"));
  EXPECT_TRUE(codes.count("HO"));
}

TEST(CitiesTest, DatasetShapeMatchesPaperSetting) {
  for (const std::string& code : CityCodes()) {
    const CityDataset ds = MakeCityDataset(code);
    EXPECT_EQ(ds.city, code);
    ASSERT_EQ(ds.relations.size(), 3u);  // hotels, restaurants, theaters
    EXPECT_EQ(ds.query.dim(), 2);        // d = 2 (lat/long analogue)
    EXPECT_EQ(ds.relations[0].name(), "hotels");
    EXPECT_EQ(ds.relations[1].name(), "restaurants");
    EXPECT_EQ(ds.relations[2].name(), "theaters");
    for (const Relation& r : ds.relations) {
      EXPECT_TRUE(r.Validate().ok()) << code << "/" << r.name();
      EXPECT_GT(r.size(), 20u);
    }
    // Restaurants outnumber theaters everywhere, like the real services.
    EXPECT_GT(ds.relations[1].size(), ds.relations[2].size());
  }
}

TEST(CitiesTest, Deterministic) {
  const CityDataset a = MakeCityDataset("SF");
  const CityDataset b = MakeCityDataset("SF");
  EXPECT_TRUE(a.query == b.query);
  ASSERT_EQ(a.relations[0].size(), b.relations[0].size());
  for (size_t i = 0; i < a.relations[0].size(); ++i) {
    EXPECT_TRUE(a.relations[0].tuple(i).x == b.relations[0].tuple(i).x);
  }
}

TEST(CitiesTest, CitiesDiffer) {
  const CityDataset sf = MakeCityDataset("SF");
  const CityDataset ny = MakeCityDataset("NY");
  EXPECT_FALSE(sf.query == ny.query);
  EXPECT_NE(sf.relations[0].size(), ny.relations[0].size());
}

TEST(CitiesTest, HotelScoresAreStarRatings) {
  const CityDataset ds = MakeCityDataset("BO");
  for (const Tuple& t : ds.relations[0].tuples()) {
    const double stars = t.score * 5.0;
    EXPECT_NEAR(stars, std::round(stars), 1e-9);
    EXPECT_GE(stars, 1.0);
    EXPECT_LE(stars, 5.0);
  }
}

TEST(CitiesTest, QueryIsNearTheData) {
  // The landmark lies inside the metro area: at least a quarter of each
  // category sits within a few cluster radii of it.
  for (const std::string& code : CityCodes()) {
    const CityDataset ds = MakeCityDataset(code);
    for (const Relation& r : ds.relations) {
      size_t near = 0;
      for (const Tuple& t : r.tuples()) {
        if (t.x.Distance(ds.query) < 15.0) ++near;
      }
      EXPECT_GT(near, r.size() / 4) << code << "/" << r.name();
    }
  }
}

}  // namespace
}  // namespace prj
