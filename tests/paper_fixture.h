// Shared fixtures reproducing the paper's running example (Table 1) and
// the counterexample instances of Theorem 3.1 and Theorem C.1.
#ifndef PRJ_TESTS_PAPER_FIXTURE_H_
#define PRJ_TESTS_PAPER_FIXTURE_H_

#include <cmath>
#include <vector>

#include "access/relation.h"
#include "common/vec.h"
#include "core/scoring.h"

namespace prj {
namespace testing_fixture {

/// The three relations of Table 1 (two tuples each, already in
/// distance-from-query order; q = 0, ws = wq = wmu = 1).
inline std::vector<Relation> Table1Relations() {
  Relation r1("R1", 2), r2("R2", 2), r3("R3", 2);
  r1.Add(0, 0.5, Vec{0.0, -0.5});  // tau_1^(1)
  r1.Add(1, 1.0, Vec{0.0, 1.0});   // tau_1^(2)
  r2.Add(0, 1.0, Vec{1.0, 1.0});   // tau_2^(1)
  r2.Add(1, 0.8, Vec{-2.0, 2.0});  // tau_2^(2)
  r3.Add(0, 1.0, Vec{-1.0, 1.0});  // tau_3^(1)
  r3.Add(1, 0.4, Vec{-2.0, -2.0}); // tau_3^(2)
  return {r1, r2, r3};
}

inline Vec Table1Query() { return Vec{0.0, 0.0}; }

inline SumLogEuclideanScoring Table1Scoring() {
  return SumLogEuclideanScoring(1.0, 1.0, 1.0);
}

/// Distances of the last accessed tuples when all of Table 1 is seen:
/// delta_1 = 1, delta_2 = delta_3 = 2*sqrt(2).
inline std::vector<double> Table1Deltas() {
  return {1.0, 2.0 * std::sqrt(2.0), 2.0 * std::sqrt(2.0)};
}

/// One row of Table 1 (combination scores, 1-decimal precision).
struct Table1Combo {
  int i1, i2, i3;  // 0-based tuple indices into R1, R2, R3
  double score;
};

inline std::vector<Table1Combo> Table1Scores() {
  return {
      {1, 0, 0, -7.0},  {0, 0, 0, -8.4},  {1, 1, 0, -13.9}, {0, 1, 0, -16.3},
      {0, 0, 1, -21.0}, {1, 0, 1, -22.6}, {0, 1, 1, -28.9}, {1, 1, 1, -29.5},
  };
}

/// One row of Table 3: subset mask (bit i = relation i seen), member tuple
/// indices (ascending relation order) and the partial bound t(tau).
struct Table3Row {
  uint32_t mask;
  std::vector<uint32_t> members;
  double t;
};

inline std::vector<Table3Row> Table3Rows() {
  return {
      {0b000, {}, -19.2},
      {0b001, {0}, -20.6},    {0b001, {1}, -19.2},
      {0b010, {0}, -12.8},    {0b010, {1}, -19.4},
      {0b100, {0}, -12.8},    {0b100, {1}, -20.1},
      {0b011, {0, 0}, -16.0}, {0b011, {0, 1}, -24.0},
      {0b011, {1, 0}, -13.5}, {0b011, {1, 1}, -20.4},
      {0b101, {0, 0}, -16.0}, {0b101, {0, 1}, -22.0},
      {0b101, {1, 0}, -13.5}, {0b101, {1, 1}, -26.4},
      {0b110, {0, 0}, -7.0},  {0b110, {0, 1}, -21.0},
      {0b110, {1, 0}, -13.1}, {0b110, {1, 1}, -26.8},
  };
}

/// t_M per subset (Table 3 rightmost column).
inline std::vector<std::pair<uint32_t, double>> Table3SubsetBounds() {
  return {{0b000, -19.2}, {0b001, -19.2}, {0b010, -12.8}, {0b100, -12.8},
          {0b011, -13.5}, {0b101, -13.5}, {0b110, -7.0}};
}

/// The Theorem 3.1 counterexample: ws = 0, wq = wmu = 1, q = 0, K = 1.
/// R1 additionally carries `filler` tuples between tau_1^(2) and the
/// distance sqrt(1.5) that the corner bound must reach before stopping.
inline std::vector<Relation> Theorem31Relations(int fillers) {
  Relation r1("R1", 2), r2("R2", 2);
  r1.Add(0, 1.0, Vec{0.0, -0.5});
  r1.Add(1, 1.0, Vec{0.0, 1.0});
  for (int f = 0; f < fillers; ++f) {
    // Ring between radius 1.05 and 1.2 (< sqrt(1.5) ~ 1.2247).
    const double radius = 1.05 + 0.15 * f / std::max(1, fillers);
    const double angle = 0.3 + 0.1 * f;
    r1.Add(2 + f, 1.0, Vec{radius * std::cos(angle), radius * std::sin(angle)});
  }
  r2.Add(0, 1.0, Vec{0.0, 2.0});
  r2.Add(1, 1.0, Vec{-2.0, 2.0});
  return {r1, r2};
}

inline SumLogEuclideanScoring Theorem31Scoring() {
  // ws = 0: tuple scores are immaterial. A tiny positive ws would break
  // nothing; the paper uses exactly 0.
  return SumLogEuclideanScoring(0.0, 1.0, 1.0);
}

/// The Theorem C.1 counterexample (score-based access): d = 1,
/// ws = wq = wmu = 1, q = [0]. R2 carries fillers with scores in
/// (e^{-4/3}, 1) far from the query.
inline std::vector<Relation> TheoremC1Relations(int fillers) {
  Relation r1("R1", 1), r2("R2", 1);
  r1.Add(0, 1.0, Vec{1.0});
  r1.Add(1, std::exp(-5.0), Vec{0.0});
  r2.Add(0, 1.0, Vec{1.0});
  r2.Add(1, 1.0, Vec{1.0 / 3.0});
  const double floor_score = std::exp(-4.0 / 3.0) + 0.02;
  for (int f = 0; f < fillers; ++f) {
    const double score =
        0.99 - (0.99 - floor_score) * (f + 1.0) / (fillers + 1.0);
    r2.Add(2 + f, score, Vec{10.0 + f});
  }
  return {r1, r2};
}

}  // namespace testing_fixture
}  // namespace prj

#endif  // PRJ_TESTS_PAPER_FIXTURE_H_
