// Unit and property tests for the R-tree substrate: structural invariants,
// range queries, k-NN and incremental distance browsing vs. linear scans.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "index/rtree.h"

namespace prj {
namespace {

std::vector<RTree::Item> RandomItems(Rng* rng, int dim, int count,
                                     double lo = -10, double hi = 10) {
  std::vector<RTree::Item> items;
  items.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    items.push_back(RTree::Item{rng->UniformInCube(dim, lo, hi), i});
  }
  return items;
}

std::vector<int64_t> BruteRange(const std::vector<RTree::Item>& items,
                                const Rect& box) {
  std::vector<int64_t> out;
  for (const auto& it : items) {
    if (box.Contains(it.point)) out.push_back(it.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int64_t> BruteNearest(const std::vector<RTree::Item>& items,
                                  const Vec& q, size_t k) {
  std::vector<RTree::Item> sorted = items;
  std::sort(sorted.begin(), sorted.end(),
            [&](const RTree::Item& a, const RTree::Item& b) {
              const double da = a.point.SquaredDistance(q);
              const double db = b.point.SquaredDistance(q);
              if (da != db) return da < db;
              return a.id < b.id;
            });
  std::vector<int64_t> ids;
  for (size_t i = 0; i < std::min(k, sorted.size()); ++i) {
    ids.push_back(sorted[i].id);
  }
  return ids;
}

TEST(RectTest, AreaAndExtend) {
  Rect r(Vec{0.0, 0.0}, Vec{2.0, 3.0});
  EXPECT_DOUBLE_EQ(r.Area(), 6.0);
  r.Extend(Rect::ForPoint(Vec{-1.0, 5.0}));
  EXPECT_DOUBLE_EQ(r.Area(), 15.0);
  EXPECT_TRUE(r.Contains(Vec{-1.0, 5.0}));
}

TEST(RectTest, ContainsAndIntersects) {
  Rect a(Vec{0.0, 0.0}, Vec{2.0, 2.0});
  Rect b(Vec{1.0, 1.0}, Vec{3.0, 3.0});
  Rect c(Vec{5.0, 5.0}, Vec{6.0, 6.0});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.ContainsRect(Rect(Vec{0.5, 0.5}, Vec{1.0, 1.0})));
  EXPECT_FALSE(a.ContainsRect(b));
}

TEST(RectTest, MinSquaredDistance) {
  Rect r(Vec{0.0, 0.0}, Vec{2.0, 2.0});
  EXPECT_DOUBLE_EQ(r.MinSquaredDistance(Vec{1.0, 1.0}), 0.0);  // inside
  EXPECT_DOUBLE_EQ(r.MinSquaredDistance(Vec{3.0, 1.0}), 1.0);  // right side
  EXPECT_DOUBLE_EQ(r.MinSquaredDistance(Vec{3.0, 3.0}), 2.0);  // corner
}

TEST(RTreeTest, EmptyTreeBehaves) {
  RTree tree(2);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_TRUE(tree.RangeQuery(Rect(Vec{-1.0, -1.0}, Vec{1.0, 1.0})).empty());
  EXPECT_TRUE(tree.NearestK(Vec{0.0, 0.0}, 3).empty());
  auto browse = tree.NearestBrowse(Vec{0.0, 0.0});
  EXPECT_FALSE(browse.Next().has_value());
}

TEST(RTreeTest, SingleItem) {
  RTree tree(2);
  tree.Insert(Vec{1.0, 2.0}, 42);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.CheckInvariants());
  const auto nearest = tree.NearestK(Vec{0.0, 0.0}, 1);
  ASSERT_EQ(nearest.size(), 1u);
  EXPECT_EQ(nearest[0].id, 42);
}

TEST(RTreeTest, InvariantsHoldDuringInsertions) {
  Rng rng(51);
  RTree tree(3);
  auto items = RandomItems(&rng, 3, 400);
  for (size_t i = 0; i < items.size(); ++i) {
    tree.Insert(items[i].point, items[i].id);
    if (i % 37 == 0) {
      ASSERT_TRUE(tree.CheckInvariants()) << "after insert " << i;
    }
  }
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), items.size());
  EXPECT_GT(tree.Height(), 1);
}

TEST(RTreeTest, BulkLoadInvariants) {
  Rng rng(52);
  for (int count : {1, 5, 16, 17, 100, 1000}) {
    auto items = RandomItems(&rng, 2, count);
    RTree tree = RTree::BulkLoad(2, items);
    EXPECT_EQ(tree.size(), static_cast<size_t>(count));
    EXPECT_TRUE(tree.CheckInvariants()) << "count " << count;
  }
}

TEST(RTreeTest, RangeQueryMatchesBruteForce) {
  Rng rng(53);
  auto items = RandomItems(&rng, 2, 500);
  RTree inserted(2);
  for (const auto& it : items) inserted.Insert(it.point, it.id);
  RTree bulk = RTree::BulkLoad(2, items);
  for (int trial = 0; trial < 40; ++trial) {
    Vec lo = rng.UniformInCube(2, -10, 8);
    Vec hi = lo;
    hi[0] += rng.Uniform(0.5, 6.0);
    hi[1] += rng.Uniform(0.5, 6.0);
    const Rect box(lo, hi);
    const auto expected = BruteRange(items, box);
    for (RTree* tree : {&inserted, &bulk}) {
      auto got = tree->RangeQuery(box);
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expected) << "trial " << trial;
    }
  }
}

TEST(RTreeTest, NearestKMatchesBruteForceAcrossDims) {
  Rng rng(54);
  for (int dim : {1, 2, 4, 8}) {
    auto items = RandomItems(&rng, dim, 300);
    RTree tree = RTree::BulkLoad(dim, items);
    for (int trial = 0; trial < 20; ++trial) {
      const Vec q = rng.UniformInCube(dim, -12, 12);
      for (size_t k : {1u, 5u, 50u}) {
        const auto got = tree.NearestK(q, k);
        const auto expected = BruteNearest(items, q, k);
        ASSERT_EQ(got.size(), expected.size());
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].id, expected[i]) << "dim " << dim << " k " << k;
        }
      }
    }
  }
}

TEST(RTreeTest, NearestKMoreThanSizeReturnsAll) {
  Rng rng(55);
  auto items = RandomItems(&rng, 2, 20);
  RTree tree = RTree::BulkLoad(2, items);
  EXPECT_EQ(tree.NearestK(Vec{0.0, 0.0}, 100).size(), 20u);
}

TEST(RTreeTest, IncrementalBrowseIsSorted) {
  Rng rng(56);
  auto items = RandomItems(&rng, 2, 400);
  RTree tree(2);
  for (const auto& it : items) tree.Insert(it.point, it.id);
  const Vec q = Vec{0.5, -0.5};
  auto browse = tree.NearestBrowse(q);
  double prev = -1.0;
  size_t count = 0;
  while (auto item = browse.Next()) {
    const double d = item->point.SquaredDistance(q);
    EXPECT_GE(d, prev - 1e-12);
    prev = d;
    ++count;
  }
  EXPECT_EQ(count, items.size());
}

TEST(RTreeTest, IncrementalBrowseMatchesFullSort) {
  Rng rng(57);
  auto items = RandomItems(&rng, 3, 250);
  RTree tree = RTree::BulkLoad(3, items);
  const Vec q = rng.UniformInCube(3, -5, 5);
  const auto expected = BruteNearest(items, q, items.size());
  auto browse = tree.NearestBrowse(q);
  for (size_t i = 0; i < expected.size(); ++i) {
    auto item = browse.Next();
    ASSERT_TRUE(item.has_value());
    // Equal-distance ties may come out in either order; compare distances.
    const double de =
        items[static_cast<size_t>(expected[i])].point.SquaredDistance(q);
    EXPECT_NEAR(item->point.SquaredDistance(q), de, 1e-12);
  }
  EXPECT_FALSE(browse.Next().has_value());
}

TEST(RTreeTest, PeekMatchesNext) {
  Rng rng(58);
  auto items = RandomItems(&rng, 2, 50);
  RTree tree = RTree::BulkLoad(2, items);
  auto browse = tree.NearestBrowse(Vec{0.0, 0.0});
  for (int i = 0; i < 50; ++i) {
    const double peek = browse.PeekSquaredDistance();
    auto item = browse.Next();
    ASSERT_TRUE(item.has_value());
    EXPECT_DOUBLE_EQ(item->point.SquaredDistance(Vec{0.0, 0.0}), peek);
  }
  EXPECT_TRUE(std::isinf(browse.PeekSquaredDistance()));
}

TEST(RTreeTest, DuplicatePointsAllReturned) {
  RTree tree(2);
  for (int i = 0; i < 30; ++i) tree.Insert(Vec{1.0, 1.0}, i);
  EXPECT_TRUE(tree.CheckInvariants());
  const auto nearest = tree.NearestK(Vec{0.0, 0.0}, 30);
  EXPECT_EQ(nearest.size(), 30u);
}

TEST(RTreeTest, ClusteredDataInvariants) {
  Rng rng(59);
  RTree tree(2);
  for (int c = 0; c < 5; ++c) {
    const Vec center = rng.UniformInCube(2, -100, 100);
    for (int i = 0; i < 80; ++i) {
      tree.Insert(rng.GaussianAround(center, 0.5), c * 80 + i);
    }
  }
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), 400u);
}

// Regression: NearestK used to group distance ties with an absolute
// epsilon (peek > last_dist + 1e-18) on *squared* distances, which is
// scale-dependent. At both extremes the contract is the same: exactly
// min(k, size) items, nearest first, ties broken by id -- independent of
// tree shape (Insert-built vs bulk-loaded).
TEST(RTreeNearestKTiesTest, ExactTiesAtCoarseCoordinatesBreakById) {
  const Vec q{1000.0, 1000.0};
  // Four points at squared distance 1 and eight exactly tied at 25 (3-4-5
  // offsets are exactly representable, so the ties are bit-exact).
  std::vector<RTree::Item> items;
  items.push_back({Vec{1001.0, 1000.0}, 100});
  items.push_back({Vec{999.0, 1000.0}, 101});
  items.push_back({Vec{1000.0, 1001.0}, 102});
  items.push_back({Vec{1000.0, 999.0}, 103});
  const double off[8][2] = {{3, 4},  {4, 3},  {-3, 4}, {4, -3},
                            {-4, -3}, {-3, -4}, {5, 0},  {0, 5}};
  for (int i = 0; i < 8; ++i) {
    items.push_back({Vec{1000.0 + off[i][0], 1000.0 + off[i][1]}, i});
  }

  RTree inserted(2);
  for (const auto& it : items) inserted.Insert(it.point, it.id);
  RTree bulk = RTree::BulkLoad(2, items);
  for (RTree* tree : {&inserted, &bulk}) {
    // k cuts through the tied group: the cut must select the smallest ids
    // among the ties, and return exactly k items.
    const auto got = tree->NearestK(q, 6);
    ASSERT_EQ(got.size(), 6u);
    const int64_t expected_ids[6] = {100, 101, 102, 103, 0, 1};
    for (size_t i = 0; i < 6; ++i) {
      EXPECT_EQ(got[i].id, expected_ids[i]) << "rank " << i;
    }
  }
}

TEST(RTreeNearestKTiesTest, TinyCoordinatesDoNotLumpDistinctDistances) {
  // At coordinates ~1e-12 every pairwise squared-distance difference is
  // far below the old 1e-18 epsilon, which lumped the entire data set into
  // one "tie" group. Distances here are distinct, so NearestK must return
  // exactly k items in true distance order.
  const Vec q{0.0, 0.0};
  std::vector<RTree::Item> items;
  for (int i = 0; i < 40; ++i) {
    // Distinct distances (i+1)*1e-12; ids deliberately out of distance
    // order so id order cannot masquerade as distance order.
    items.push_back({Vec{static_cast<double>(i + 1) * 1e-12, 0.0},
                     (i * 7) % 40});
  }
  RTree inserted(2);
  for (const auto& it : items) inserted.Insert(it.point, it.id);
  RTree bulk = RTree::BulkLoad(2, items);
  for (RTree* tree : {&inserted, &bulk}) {
    for (size_t k : {1u, 3u, 10u}) {
      const auto got = tree->NearestK(q, k);
      ASSERT_EQ(got.size(), k);
      for (size_t i = 0; i < k; ++i) {
        EXPECT_EQ(got[i].id,
                  items[i].id)  // items built in increasing distance
            << "k " << k << " rank " << i;
      }
    }
  }
}

TEST(RTreeNearestKTiesTest, ExactTiesAtTinyCoordinatesBreakById) {
  const Vec q{0.0, 0.0};
  RTree tree(2);
  // Ten exact duplicates (bit-identical distance) plus one nearer point.
  tree.Insert(Vec{1e-12, 0.0}, 50);
  for (int id : {9, 4, 7, 1, 8, 3, 6, 0, 5, 2}) {
    tree.Insert(Vec{0.0, 2e-12}, id);
  }
  const auto got = tree.NearestK(q, 4);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].id, 50);
  EXPECT_EQ(got[1].id, 0);
  EXPECT_EQ(got[2].id, 1);
  EXPECT_EQ(got[3].id, 2);
}

// The incremental browse itself must stream exact-distance ties in id
// order regardless of tree shape (Definition 2.1's deterministic access
// order; the sharded gather reconstructs it from output tuples alone).
// Insertion-built and bulk-loaded trees put the tied points in different
// nodes, so heap insertion order alone would disagree between them.
TEST(RTreeNearestKTiesTest, BrowseStreamsExactTiesById) {
  const Vec q{1000.0, 1000.0};
  std::vector<RTree::Item> items;
  // Eight points exactly tied at squared distance 25 (3-4-5 offsets are
  // exactly representable), ids deliberately shuffled, plus background
  // points nearer and farther.
  const double off[8][2] = {{3, 4},  {4, 3},  {-3, 4}, {4, -3},
                            {-4, -3}, {-3, -4}, {5, 0},  {0, 5}};
  const int64_t tie_ids[8] = {13, 2, 11, 5, 7, 3, 17, 0};
  for (int i = 0; i < 8; ++i) {
    items.push_back({Vec{1000.0 + off[i][0], 1000.0 + off[i][1]}, tie_ids[i]});
  }
  items.push_back({Vec{1001.0, 1000.0}, 40});   // dist^2 = 1
  items.push_back({Vec{1000.0, 992.0}, 41});    // dist^2 = 64
  RTree inserted(2);
  for (const auto& it : items) inserted.Insert(it.point, it.id);
  RTree bulk = RTree::BulkLoad(2, items);
  const int64_t expected[10] = {40, 0, 2, 3, 5, 7, 11, 13, 17, 41};
  for (RTree* tree : {&inserted, &bulk}) {
    auto browse = tree->NearestBrowse(q);
    for (int64_t want : expected) {
      auto item = browse.Next();
      ASSERT_TRUE(item.has_value());
      EXPECT_EQ(item->id, want);
    }
    EXPECT_FALSE(browse.Next().has_value());
  }
}

// PeekSquaredDistance is logically read-only and callable through a const
// iterator: the shared read paths (const RTree& -> const Engine& -> the
// server) must never need a const_cast.
TEST(RTreeTest, PeekSquaredDistanceIsConst) {
  Rng rng(61);
  auto items = RandomItems(&rng, 2, 20);
  const RTree tree = RTree::BulkLoad(2, items);
  RTree::NearestIterator browse = tree.NearestBrowse(Vec{0.0, 0.0});
  const RTree::NearestIterator& const_browse = browse;
  const double peek = const_browse.PeekSquaredDistance();
  auto item = browse.Next();
  ASSERT_TRUE(item.has_value());
  EXPECT_DOUBLE_EQ(item->point.SquaredDistance(Vec{0.0, 0.0}), peek);
}

TEST(RTreeTest, HighDimensionalQueries) {
  Rng rng(60);
  auto items = RandomItems(&rng, 16, 200, -2, 2);
  RTree tree = RTree::BulkLoad(16, items);
  EXPECT_TRUE(tree.CheckInvariants());
  const Vec q(16, 0.0);
  const auto got = tree.NearestK(q, 10);
  const auto expected = BruteNearest(items, q, 10);
  ASSERT_EQ(got.size(), 10u);
  for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i].id, expected[i]);
}

}  // namespace
}  // namespace prj
