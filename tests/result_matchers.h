// gtest wrapper around the library's one bit-identity definition
// (BitIdenticalResults, core/query_engine.h): same length, exactly equal
// (==, no tolerance) scores, identical member tuple ids, rank for rank.
// The tests and the bench gates (bench::BitIdentical) both defer to that
// single predicate, so "bit-identical" cannot drift between them.
#ifndef PRJ_TESTS_RESULT_MATCHERS_H_
#define PRJ_TESTS_RESULT_MATCHERS_H_

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/query_engine.h"

namespace prj {

inline void ExpectBitIdentical(const std::vector<ResultCombination>& got,
                               const std::vector<ResultCombination>& expected,
                               const std::string& label) {
  std::string why;
  EXPECT_TRUE(BitIdenticalResults(got, expected, &why)) << label << ": " << why;
}

}  // namespace prj

#endif  // PRJ_TESTS_RESULT_MATCHERS_H_
