// Tests for the live-data storage layer (access/delta_relation.h): the
// persistent append-only DeltaRelation log and its pruning envelope, the
// delta access sources' conformance to the shared access orders, the
// order-preserving base+delta merge, and tombstone filtering.
#include <memory>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "access/delta_relation.h"
#include "access/relation.h"
#include "access/source.h"
#include "common/vec.h"
#include "workload/synthetic.h"

namespace prj {
namespace {

std::vector<Tuple> SmallBatch() {
  return {Tuple{0, 0.9, Vec{3.0, 0.0}}, Tuple{1, 0.5, Vec{1.0, 0.0}},
          Tuple{2, 0.7, Vec{2.0, 0.0}}};
}

Relation RandomRelation(int count, uint64_t seed, const char* name = "D") {
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = count;
  spec.density = 50;
  spec.seed = seed;
  return GenerateUniformRelation(spec, name);
}

// ------------------------------ DeltaRelation --------------------------- //

TEST(DeltaRelationTest, EmptyCarriesIdentityAndNoEnvelope) {
  auto delta = DeltaRelation::Empty("R", 2, 0.8);
  EXPECT_EQ(delta->name(), "R");
  EXPECT_EQ(delta->dim(), 2);
  EXPECT_DOUBLE_EQ(delta->sigma_max(), 0.8);
  EXPECT_TRUE(delta->empty());
  EXPECT_EQ(delta->num_chunks(), 0u);
  EXPECT_FALSE(delta->mbr().has_value());
  EXPECT_DOUBLE_EQ(delta->score_max(), 0.0);
}

TEST(DeltaRelationTest, AppendIsPersistent) {
  auto d0 = DeltaRelation::Empty("R", 2, 1.0);
  auto d1_or = d0->Append(SmallBatch());
  ASSERT_TRUE(d1_or.ok()) << d1_or.status().message();
  auto d1 = *d1_or;
  auto d2_or = d1->Append({Tuple{7, 0.4, Vec{0.5, 0.5}}});
  ASSERT_TRUE(d2_or.ok());
  auto d2 = *d2_or;

  // The parents are untouched: a snapshot holding d0/d1 still sees
  // exactly the tuples it saw at capture time.
  EXPECT_EQ(d0->size(), 0u);
  EXPECT_EQ(d1->size(), 3u);
  EXPECT_EQ(d2->size(), 4u);
  EXPECT_EQ(d1->num_chunks(), 1u);
  EXPECT_EQ(d2->num_chunks(), 2u);
  EXPECT_FALSE(d1->Contains(7));
  EXPECT_TRUE(d2->Contains(7));
  EXPECT_TRUE(d2->Contains(0));

  const std::vector<Tuple> all = d2->Collect();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].id, 0);  // append order, concatenated across chunks
  EXPECT_EQ(all[3].id, 7);
}

TEST(DeltaRelationTest, EnvelopeTracksAppendedTuples) {
  auto d = DeltaRelation::Empty("R", 2, 1.0);
  d = *d->Append({Tuple{1, 0.3, Vec{1.0, 4.0}}});
  ASSERT_TRUE(d->mbr().has_value());
  EXPECT_DOUBLE_EQ(d->score_max(), 0.3);
  d = *d->Append({Tuple{2, 0.9, Vec{-2.0, 1.0}}});
  EXPECT_DOUBLE_EQ(d->score_max(), 0.9);
  const Rect& mbr = *d->mbr();
  EXPECT_DOUBLE_EQ(mbr.lo[0], -2.0);
  EXPECT_DOUBLE_EQ(mbr.hi[0], 1.0);
  EXPECT_DOUBLE_EQ(mbr.lo[1], 1.0);
  EXPECT_DOUBLE_EQ(mbr.hi[1], 4.0);
}

TEST(DeltaRelationTest, AppendValidatesLikeRelationValidate) {
  auto d = DeltaRelation::Empty("R", 2, 0.8);
  // Dim mismatch.
  EXPECT_FALSE(d->Append({Tuple{1, 0.5, Vec{1.0}}}).ok());
  // Score out of (0, sigma_max].
  EXPECT_FALSE(d->Append({Tuple{1, 0.0, Vec{1.0, 2.0}}}).ok());
  EXPECT_FALSE(d->Append({Tuple{1, 0.9, Vec{1.0, 2.0}}}).ok());
  // Duplicate id within the batch.
  EXPECT_FALSE(d
                   ->Append({Tuple{1, 0.5, Vec{1.0, 2.0}},
                             Tuple{1, 0.6, Vec{2.0, 1.0}}})
                   .ok());
  // Duplicate id across the log.
  d = *d->Append({Tuple{1, 0.5, Vec{1.0, 2.0}}});
  EXPECT_FALSE(d->Append({Tuple{1, 0.6, Vec{2.0, 1.0}}}).ok());
  // A failed Append left the log unchanged each time.
  EXPECT_EQ(d->size(), 1u);
}

TEST(DeltaRelationTest, SuffixFromDropsPrefixAndRebuildsEnvelope) {
  auto d = DeltaRelation::Empty("R", 2, 1.0);
  d = *d->Append({Tuple{1, 0.9, Vec{100.0, 100.0}}});
  d = *d->Append({Tuple{2, 0.2, Vec{1.0, 1.0}}});
  d = *d->Append({Tuple{3, 0.4, Vec{2.0, 2.0}}});

  auto suffix = d->SuffixFrom(1);
  EXPECT_EQ(suffix->size(), 2u);
  EXPECT_EQ(suffix->num_chunks(), 2u);
  EXPECT_FALSE(suffix->Contains(1));
  EXPECT_TRUE(suffix->Contains(2));
  EXPECT_TRUE(suffix->Contains(3));
  // The envelope reflects only the suffix: the far-away high-score chunk
  // no longer inflates it.
  EXPECT_DOUBLE_EQ(suffix->score_max(), 0.4);
  EXPECT_DOUBLE_EQ(suffix->mbr()->hi[0], 2.0);

  auto empty = d->SuffixFrom(d->num_chunks());
  EXPECT_TRUE(empty->empty());
  EXPECT_FALSE(empty->mbr().has_value());
}

// ----------------------------- delta sources ---------------------------- //

std::shared_ptr<const DeltaRelation> DeltaOf(const Relation& rel) {
  auto delta = DeltaRelation::Empty(rel.name(), rel.dim(), rel.sigma_max());
  auto appended = delta->Append(rel.tuples());
  EXPECT_TRUE(appended.ok());
  return *appended;
}

void ExpectSameStream(AccessSource& got, AccessSource& want) {
  for (;;) {
    auto a = got.Next();
    auto b = want.Next();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a.has_value()) break;
    EXPECT_EQ(a->id, b->id);
    EXPECT_EQ(a->score, b->score);
  }
}

TEST(DeltaSourceTest, ScoreStreamMatchesScoreSource) {
  const Relation rel = RandomRelation(150, 21);
  DeltaScoreSource got(DeltaOf(rel));
  ScoreSource want(rel);
  EXPECT_EQ(got.kind(), AccessKind::kScore);
  EXPECT_EQ(got.depth(), 0u);
  ExpectSameStream(got, want);
  EXPECT_EQ(got.depth(), rel.size());
}

TEST(DeltaSourceTest, DistanceStreamMatchesSortedDistanceSource) {
  const Relation rel = RandomRelation(150, 22);
  const Vec q{0.25, -0.75};
  DeltaDistanceSource got(DeltaOf(rel), q);
  SortedDistanceSource want(rel, q);
  EXPECT_EQ(got.kind(), AccessKind::kDistance);
  EXPECT_EQ(got.depth(), 0u);
  ExpectSameStream(got, want);
}

// --------------------------- MergedAccessSource ------------------------- //

// Splits `rel` into two halves by tuple parity and checks the merged
// stream over (base half, delta half) equals one source over the whole
// relation, under both access kinds.
TEST(MergedAccessSourceTest, MergeEqualsSingleSourceOverUnion) {
  const Relation whole = RandomRelation(200, 23);
  Relation base("D", 2, whole.sigma_max());
  Relation extra("D", 2, whole.sigma_max());
  for (size_t i = 0; i < whole.size(); ++i) {
    (i % 2 == 0 ? base : extra).Add(whole.tuple(i));
  }
  const Vec q{0.1, 0.4};

  {
    MergedAccessSource merged(std::make_unique<SortedDistanceSource>(base, q),
                              std::make_unique<DeltaDistanceSource>(
                                  DeltaOf(extra), q),
                              q);
    EXPECT_EQ(merged.depth(), 0u);  // lazy lookahead: fresh source
    SortedDistanceSource want(whole, q);
    ExpectSameStream(merged, want);
    // Every tuple of both inners was delivered (and charged) exactly once.
    EXPECT_EQ(merged.depth(), whole.size());
  }
  {
    MergedAccessSource merged(std::make_unique<ScoreSource>(base),
                              std::make_unique<DeltaScoreSource>(
                                  DeltaOf(extra)),
                              q);
    ScoreSource want(whole);
    ExpectSameStream(merged, want);
  }
}

TEST(MergedAccessSourceTest, HandlesEmptySides) {
  const Relation rel = RandomRelation(40, 24);
  auto empty = DeltaRelation::Empty("D", 2, rel.sigma_max());
  const Vec q{0.0, 0.0};
  MergedAccessSource merged(std::make_unique<SortedDistanceSource>(rel, q),
                            std::make_unique<DeltaDistanceSource>(empty, q),
                            q);
  SortedDistanceSource want(rel, q);
  ExpectSameStream(merged, want);
}

// --------------------------- TombstoneFilterSource ---------------------- //

TEST(TombstoneFilterSourceTest, DropsTombstonedIdsPreservingOrder) {
  const Relation rel = RandomRelation(100, 25);
  auto tombs = std::make_shared<IdSet>();
  for (size_t i = 0; i < rel.size(); i += 3) tombs->insert(rel.tuple(i).id);

  const Vec q{0.3, 0.3};
  TombstoneFilterSource filtered(
      std::make_unique<SortedDistanceSource>(rel, q), tombs);
  EXPECT_EQ(filtered.depth(), 0u);

  SortedDistanceSource reference(rel, q);
  size_t survivors = 0;
  for (;;) {
    auto t = filtered.Next();
    // Advance the reference past tombstoned ids to the next survivor.
    std::optional<Tuple> r;
    while ((r = reference.Next()).has_value() && tombs->count(r->id) > 0) {
    }
    ASSERT_EQ(t.has_value(), r.has_value());
    if (!t.has_value()) break;
    EXPECT_EQ(t->id, r->id);
    ++survivors;
  }
  EXPECT_EQ(survivors, rel.size() - tombs->size());
  // depth() charges what the inner service delivered, tombstones included.
  EXPECT_EQ(filtered.depth(), rel.size());
}

TEST(TombstoneFilterSourceTest, NullTombstonesPassEverything) {
  const Relation rel = RandomRelation(30, 26);
  TombstoneFilterSource filtered(std::make_unique<ScoreSource>(rel), nullptr);
  ScoreSource want(rel);
  ExpectSameStream(filtered, want);
}

}  // namespace
}  // namespace prj
