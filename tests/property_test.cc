// Property suite: randomized cross-validation of the whole operator stack
// over a parameter grid (n, d, K, weights, access kind, algorithm), plus
// degenerate-geometry cases that stress the bound computations.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/brute_force.h"
#include "core/engine.h"
#include "workload/cities.h"
#include "workload/synthetic.h"

namespace prj {
namespace {

struct GridCase {
  int n;
  int d;
  int k;
  double ws, wq, wmu;
  AccessKind kind;
  BoundKind bound;
  PullKind pull;
  uint64_t seed;
};

void PrintTo(const GridCase& c, std::ostream* os) {
  *os << "n" << c.n << "_d" << c.d << "_k" << c.k << "_w" << c.ws << "/"
      << c.wq << "/" << c.wmu
      << (c.kind == AccessKind::kDistance ? "_dist" : "_score")
      << (c.bound == BoundKind::kTight ? "_TB" : "_CB")
      << (c.pull == PullKind::kPotentialAdaptive ? "PA" : "RR") << "_s"
      << c.seed;
}

class GridTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(GridTest, MatchesBruteForce) {
  const GridCase& c = GetParam();
  SyntheticSpec spec;
  spec.dim = c.d;
  spec.count = c.n == 3 ? 25 : 60;  // keep the oracle cheap
  spec.density = spec.count;
  spec.seed = c.seed;
  const auto rels = GenerateProblem(c.n, spec);
  const SumLogEuclideanScoring scoring(c.ws, c.wq, c.wmu);
  const Vec q(c.d, 0.0);
  const auto expected = BruteForceTopK(rels, scoring, q, c.k);

  ProxRJOptions opts;
  opts.k = c.k;
  opts.bound = c.bound;
  opts.pull = c.pull;
  ExecStats stats;
  auto result = RunProxRJ(rels, c.kind, scoring, q, opts, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(stats.completed);
  ASSERT_EQ(result->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR((*result)[i].score, expected[i].score, 1e-7) << "rank " << i;
  }
  // Depth accounting is consistent.
  size_t total = 0;
  for (size_t depth : stats.depths) total += depth;
  EXPECT_EQ(total, stats.sum_depths);
}

std::vector<GridCase> MakeGrid() {
  std::vector<GridCase> cases;
  uint64_t seed = 1000;
  for (int n : {2, 3}) {
    for (int d : {1, 2, 4, 8}) {
      for (int k : {1, 7}) {
        for (auto [ws, wq, wmu] :
             {std::tuple{1.0, 1.0, 1.0}, std::tuple{0.5, 2.0, 0.25}}) {
          for (AccessKind kind : {AccessKind::kDistance, AccessKind::kScore}) {
            for (BoundKind bound : {BoundKind::kCorner, BoundKind::kTight}) {
              cases.push_back(GridCase{n, d, k, ws, wq, wmu, kind, bound,
                                       PullKind::kPotentialAdaptive, ++seed});
            }
          }
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, GridTest, ::testing::ValuesIn(MakeGrid()));

// ----------------------- Degenerate geometries ------------------------- //

TEST(DegenerateTest, AllTuplesAtTheSamePoint) {
  // Geometry fully degenerate: only scores discriminate.
  Relation r1("R1", 2), r2("R2", 2);
  for (int i = 0; i < 6; ++i) {
    r1.Add(i, 0.1 + 0.15 * i, Vec{1.0, 1.0});
    r2.Add(i, 0.9 - 0.1 * i, Vec{1.0, 1.0});
  }
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const Vec q{0.0, 0.0};
  const auto expected = BruteForceTopK({r1, r2}, scoring, q, 5);
  for (const auto& preset : {kCBRR, kTBPA}) {
    ProxRJOptions opts;
    opts.k = 5;
    opts.Apply(preset);
    auto result = RunProxRJ({r1, r2}, AccessKind::kDistance, scoring, q, opts);
    ASSERT_TRUE(result.ok()) << preset.name;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR((*result)[i].score, expected[i].score, 1e-9);
    }
  }
}

TEST(DegenerateTest, TuplesAtTheQueryItself) {
  // nu == q for singleton partials whose member sits on the query: the
  // centroid ray is undefined and the bound must fall back gracefully.
  Relation r1("R1", 2), r2("R2", 2);
  r1.Add(0, 0.8, Vec{0.0, 0.0});  // exactly at q
  r1.Add(1, 1.0, Vec{0.5, 0.0});
  r2.Add(0, 0.9, Vec{0.0, 0.0});  // exactly at q
  r2.Add(1, 0.7, Vec{0.0, 0.7});
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const Vec q{0.0, 0.0};
  const auto expected = BruteForceTopK({r1, r2}, scoring, q, 4);
  ProxRJOptions opts;
  opts.k = 4;
  opts.Apply(kTBRR);
  auto result = RunProxRJ({r1, r2}, AccessKind::kDistance, scoring, q, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR((*result)[i].score, expected[i].score, 1e-9);
  }
}

TEST(DegenerateTest, CollinearTuples) {
  // All data on one line through the query (effectively 1-D embedded in 2-D).
  Relation r1("R1", 2), r2("R2", 2);
  for (int i = 0; i < 8; ++i) {
    r1.Add(i, 0.5 + 0.05 * i, Vec{0.3 * i, 0.3 * i});
    r2.Add(i, 0.9 - 0.05 * i, Vec{-0.2 * i, -0.2 * i});
  }
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const Vec q{0.0, 0.0};
  const auto expected = BruteForceTopK({r1, r2}, scoring, q, 6);
  ProxRJOptions opts;
  opts.k = 6;
  opts.Apply(kTBPA);
  opts.dominance_period = 1;  // dominance with collinear centroids
  auto result = RunProxRJ({r1, r2}, AccessKind::kDistance, scoring, q, opts);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR((*result)[i].score, expected[i].score, 1e-9);
  }
}

TEST(DegenerateTest, QueryFarOutsideTheData) {
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = 40;
  spec.density = 40;
  spec.seed = 3;
  const auto rels = GenerateProblem(2, spec);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const Vec q{100.0, -100.0};  // every tuple is far away
  const auto expected = BruteForceTopK(rels, scoring, q, 5);
  ProxRJOptions opts;
  opts.k = 5;
  opts.Apply(kTBPA);
  auto result = RunProxRJ(rels, AccessKind::kDistance, scoring, q, opts);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR((*result)[i].score, expected[i].score, 1e-7);
  }
}

TEST(DegenerateTest, ZeroQueryWeightIgnoresTheQuery) {
  // wq = 0: only scores and mutual proximity matter; distance access can
  // not prune by query distance, but correctness must hold.
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = 30;
  spec.density = 30;
  spec.seed = 4;
  const auto rels = GenerateProblem(2, spec);
  const SumLogEuclideanScoring scoring(1.0, 0.0, 1.0);
  const Vec q(2, 0.0);
  const auto expected = BruteForceTopK(rels, scoring, q, 5);
  for (auto kind : {AccessKind::kDistance, AccessKind::kScore}) {
    ProxRJOptions opts;
    opts.k = 5;
    opts.Apply(kTBRR);
    auto result = RunProxRJ(rels, kind, scoring, q, opts);
    ASSERT_TRUE(result.ok());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR((*result)[i].score, expected[i].score, 1e-9);
    }
  }
}

TEST(DegenerateTest, ZeroProximityWeightsReduceToClassicRankJoin) {
  // wq = wmu = 0: the aggregation is a plain monotone function of scores
  // -- the classical rank join setting. Score access + corner bound is
  // then exactly HRJN, and it must already be optimal-ish: the tight
  // bound coincides with the corner bound.
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = 50;
  spec.density = 50;
  spec.seed = 6;
  const auto rels = GenerateProblem(2, spec);
  const SumLogEuclideanScoring scoring(1.0, 0.0, 0.0);
  const Vec q(2, 0.0);
  const auto expected = BruteForceTopK(rels, scoring, q, 10);

  ExecStats cb_stats, tb_stats;
  ProxRJOptions cb;
  cb.k = 10;
  cb.Apply(kCBRR);
  auto cb_result = RunProxRJ(rels, AccessKind::kScore, scoring, q, cb, &cb_stats);
  ProxRJOptions tb;
  tb.k = 10;
  tb.Apply(kTBRR);
  auto tb_result = RunProxRJ(rels, AccessKind::kScore, scoring, q, tb, &tb_stats);
  ASSERT_TRUE(cb_result.ok());
  ASSERT_TRUE(tb_result.ok());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR((*cb_result)[i].score, expected[i].score, 1e-9);
    EXPECT_NEAR((*tb_result)[i].score, expected[i].score, 1e-9);
  }
  // Without geometry the tight bound degenerates to the corner bound, so
  // both read the same number of tuples.
  EXPECT_EQ(cb_stats.sum_depths, tb_stats.sum_depths);
}

TEST(DegenerateTest, DuplicateScores) {
  // Many score ties exercise the deterministic tie-breaking paths of the
  // score sources and the output buffer.
  Relation r1("R1", 1), r2("R2", 1);
  for (int i = 0; i < 10; ++i) {
    r1.Add(i, 0.5, Vec{0.1 * i});
    r2.Add(i, 0.5, Vec{-0.1 * i});
  }
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const Vec q{0.0};
  const auto expected = BruteForceTopK({r1, r2}, scoring, q, 8);
  for (auto kind : {AccessKind::kDistance, AccessKind::kScore}) {
    ProxRJOptions opts;
    opts.k = 8;
    opts.Apply(kTBPA);
    auto result = RunProxRJ({r1, r2}, kind, scoring, q, opts);
    ASSERT_TRUE(result.ok());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR((*result)[i].score, expected[i].score, 1e-9);
    }
  }
}

TEST(DegenerateTest, SigmaMaxBelowOne) {
  // A relation whose a-priori score ceiling is 0.3: the corner and tight
  // bounds must use it instead of 1.0 (otherwise they over-estimate and
  // read too much, but never too little -- here we check correctness and
  // that the tighter ceiling helps).
  Relation r1("R1", 1, /*sigma_max=*/0.3), r1_loose("R1", 1, /*sigma_max=*/1.0);
  Relation r2("R2", 1);
  Rng rng(8);
  for (int i = 0; i < 40; ++i) {
    const double s = 0.3 * (1.0 - rng.NextDouble());
    const Vec x{rng.Uniform(-1, 1)};
    r1.Add(i, s, x);
    r1_loose.Add(i, s, x);
    r2.Add(i, 1.0 - rng.NextDouble() * 0.999, Vec{rng.Uniform(-1, 1)});
  }
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const Vec q{0.0};
  const auto expected = BruteForceTopK({r1, r2}, scoring, q, 5);
  ExecStats tight_stats, loose_stats;
  ProxRJOptions opts;
  opts.k = 5;
  opts.Apply(kTBRR);
  auto tight_res =
      RunProxRJ({r1, r2}, AccessKind::kDistance, scoring, q, opts, &tight_stats);
  auto loose_res = RunProxRJ({r1_loose, r2}, AccessKind::kDistance, scoring, q,
                             opts, &loose_stats);
  ASSERT_TRUE(tight_res.ok());
  ASSERT_TRUE(loose_res.ok());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR((*tight_res)[i].score, expected[i].score, 1e-9);
    EXPECT_NEAR((*loose_res)[i].score, expected[i].score, 1e-9);
  }
  EXPECT_LE(tight_stats.sum_depths, loose_stats.sum_depths);
}

// -------------------------- City integration --------------------------- //

TEST(CityIntegrationTest, AllAlgorithmsAgreeWithOracleOnHonolulu) {
  // Full end-to-end run on the smallest city against the brute-force
  // oracle (150 x 260 x 35 ~ 1.4M combinations).
  const CityDataset city = MakeCityDataset("HO");
  const SumLogEuclideanScoring scoring(1.0, 0.5, 0.5);
  const auto expected = BruteForceTopK(city.relations, scoring, city.query, 10);
  ASSERT_EQ(expected.size(), 10u);
  for (const auto& preset : {kCBRR, kCBPA, kTBRR, kTBPA}) {
    ProxRJOptions opts;
    opts.k = 10;
    opts.Apply(preset);
    ExecStats stats;
    auto result = RunProxRJ(city.relations, AccessKind::kDistance, scoring,
                            city.query, opts, &stats);
    ASSERT_TRUE(result.ok()) << preset.name;
    ASSERT_TRUE(stats.completed);
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR((*result)[i].score, expected[i].score, 1e-7)
          << preset.name << " rank " << i;
    }
  }
}

TEST(CityIntegrationTest, ScoreAccessAgreesToo) {
  const CityDataset city = MakeCityDataset("HO");
  const SumLogEuclideanScoring scoring(1.0, 0.5, 0.5);
  const auto expected = BruteForceTopK(city.relations, scoring, city.query, 5);
  ProxRJOptions opts;
  opts.k = 5;
  opts.Apply(kTBPA);
  auto result = RunProxRJ(city.relations, AccessKind::kScore, scoring,
                          city.query, opts);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR((*result)[i].score, expected[i].score, 1e-7);
  }
}

// --------------------- Cross-algorithm consistency --------------------- //

TEST(ConsistencyTest, AllEightVariantsReturnTheSameScoreVector) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    SyntheticSpec spec;
    spec.dim = 2;
    spec.count = 120;
    spec.density = 60;
    spec.seed = seed;
    const auto rels = GenerateProblem(2, spec);
    const SumLogEuclideanScoring scoring(1, 1, 1);
    const Vec q(2, 0.0);
    std::vector<double> reference;
    for (auto kind : {AccessKind::kDistance, AccessKind::kScore}) {
      for (const auto& preset : {kCBRR, kCBPA, kTBRR, kTBPA}) {
        ProxRJOptions opts;
        opts.k = 12;
        opts.Apply(preset);
        auto result = RunProxRJ(rels, kind, scoring, q, opts);
        ASSERT_TRUE(result.ok());
        std::vector<double> scores;
        for (const auto& rc : *result) scores.push_back(rc.score);
        if (reference.empty()) {
          reference = scores;
        } else {
          ASSERT_EQ(scores.size(), reference.size());
          for (size_t i = 0; i < scores.size(); ++i) {
            EXPECT_NEAR(scores[i], reference[i], 1e-7)
                << preset.name << " seed " << seed << " rank " << i;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace prj
