// calibrate: fits the planner's cost coefficients on this machine.
//
// The PlannedEngine ranks candidate plans with a linear model per plan
// class (plan/cost_model.h). This tool produces those coefficients the
// honest way: it generates a synthetic workload spanning the regimes the
// planner must distinguish (localized vs uniform queries, small and large
// relations, several k, 2- and 3-way joins, both access kinds), executes
// EVERY candidate plan on every query via PlannedEngine::TopKWithPlan,
// and least-squares-fits measured wall seconds against the exact feature
// vectors the runtime planner will compute. The fit is ridge-regularized
// and clamped to nonnegative coefficients (a negative per-unit cost
// would let predictions dip below zero and distort plan ranking).
//
// Output: plan_coefficients.json (see --out), the file
// PlannedEngineOptions loads via PlanCoefficients::LoadFile. The checked-
// in copy at the repo root was produced by this tool; re-fit on new
// hardware with:
//
//     cmake --build build --target calibrate
//     ./build/tools/calibrate --out plan_coefficients.json
//
// --smoke (or PRJ_BENCH_SMOKE=1) shrinks the workload to a seconds-scale
// sanity run wired into CTest: it exercises the full measure-fit-write
// path, gates on the fit being usable (finite, nonnegative, nonzero),
// and writes into the build tree, never over the checked-in file.
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "core/query_engine.h"
#include "core/scoring.h"
#include "plan/cost_model.h"
#include "plan/planned_engine.h"
#include "solver/linalg.h"
#include "workload/synthetic.h"

namespace prj {
namespace {

struct Sample {
  PlanFeatures features;
  double seconds = 0.0;
};

/// Measured (features, seconds) rows of one plan class.
struct ClassSamples {
  std::vector<Sample> rows;
};

/// Relative ridge least squares with an active-set nonnegativity clamp.
/// Rows are weighted by 1/measured_seconds, so the fit minimizes RELATIVE
/// error -- plan ranking compares predictions across plans whose costs
/// span orders of magnitude, where an absolute fit would ignore every
/// cheap query. Fit all features, zero out any negative coefficient,
/// refit the survivors until the solution is nonnegative; feature slots
/// with no signal in this class's rows end up at exactly zero.
std::array<double, PlanFeatures::kCount> FitNonnegative(
    const std::vector<Sample>& rows) {
  constexpr int kF = PlanFeatures::kCount;
  std::array<double, kF> coef{};
  if (rows.empty()) return coef;
  std::array<bool, kF> active;
  active.fill(true);
  for (int pass = 0; pass < kF; ++pass) {
    std::vector<int> idx;
    for (int j = 0; j < kF; ++j) {
      if (active[j]) idx.push_back(j);
    }
    if (idx.empty()) break;
    const int m = static_cast<int>(idx.size());
    // Normal equations over the active columns, with a small ridge term
    // scaled to each column's energy so ill-conditioned feature mixes
    // (e.g. pull volume == makespan for sequential plans) stay SPD.
    Matrix ata(m, m);
    std::vector<double> atb(static_cast<size_t>(m), 0.0);
    for (const Sample& s : rows) {
      const double w = 1.0 / std::max(s.seconds, 1e-7);
      const double w2 = w * w;
      for (int a = 0; a < m; ++a) {
        const double fa = s.features.v[static_cast<size_t>(idx[a])];
        atb[static_cast<size_t>(a)] += w2 * fa * s.seconds;
        for (int b = 0; b < m; ++b) {
          ata(a, b) += w2 * fa * s.features.v[static_cast<size_t>(idx[b])];
        }
      }
    }
    for (int a = 0; a < m; ++a) {
      ata(a, a) += 1e-8 * ata(a, a) + 1e-12;
    }
    const std::vector<double> x = SolveSPD(ata, atb);
    bool all_nonneg = true;
    coef.fill(0.0);
    for (int a = 0; a < m; ++a) {
      if (x[static_cast<size_t>(a)] < 0.0) {
        active[idx[static_cast<size_t>(a)]] = false;
        all_nonneg = false;
      } else {
        coef[static_cast<size_t>(idx[a])] = x[static_cast<size_t>(a)];
      }
    }
    if (all_nonneg) break;
  }
  return coef;
}

double MeanRelativeError(const std::vector<Sample>& rows,
                         const std::array<double, PlanFeatures::kCount>& coef) {
  if (rows.empty()) return 0.0;
  double sum = 0.0;
  for (const Sample& s : rows) {
    double pred = 0.0;
    for (int j = 0; j < PlanFeatures::kCount; ++j) {
      pred += coef[static_cast<size_t>(j)] * s.features.v[static_cast<size_t>(j)];
    }
    sum += std::abs(pred - s.seconds) / std::max(s.seconds, 1e-9);
  }
  return sum / static_cast<double>(rows.size());
}

struct Scenario {
  int n = 2;
  int count = 2000;
  AccessKind kind = AccessKind::kDistance;
  bool localized = false;  ///< queries near data vs uniform over the cube
  uint64_t seed = 1;
};

/// Measures every plan of `planned` on `queries` x `ks`, appending one
/// row per (query, k, plan) to the per-class sample sets. Also verifies
/// the planner's exactness contract en passant: every plan's answer must
/// be bit-identical to plan 0's.
bool MeasureScenario(const PlannedEngine& planned,
                     const std::vector<Vec>& queries,
                     const std::vector<int>& ks, int repeats,
                     ClassSamples* by_class) {
  for (const Vec& query : queries) {
    for (int k : ks) {
      ProxRJOptions options;
      options.k = k;
      const PlanChoice choice = planned.ChoosePlan(query, k);
      std::vector<ResultCombination> reference;
      for (size_t p = 0; p < planned.num_plans(); ++p) {
        const PlanSpec& spec = planned.plan(p);
        const size_t survivors =
            spec.backend == PlanBackend::kSharded
                ? (spec.prune ? choice.shard_survivors : planned.fan_out())
                : 0;
        double best_seconds = 0.0;
        for (int rep = 0; rep <= repeats; ++rep) {
          WallTimer timer;
          auto result = planned.TopKWithPlan(p, query, options);
          const double seconds = timer.ElapsedSeconds();
          if (!result.ok()) {
            std::fprintf(stderr, "FAIL: plan %zu (%s): %s\n", p,
                         spec.name().c_str(),
                         result.status().ToString().c_str());
            return false;
          }
          if (rep == 0) {
            // Warmup pull doubles as the exactness check.
            if (p == 0) {
              reference = std::move(*result);
            } else {
              std::string why;
              if (!BitIdenticalResults(*result, reference, &why)) {
                std::fprintf(stderr, "FAIL: plan %s diverges from plan 0: %s\n",
                             spec.name().c_str(), why.c_str());
                return false;
              }
            }
            best_seconds = seconds;
          } else {
            best_seconds = std::min(best_seconds, seconds);
          }
        }
        Sample sample;
        sample.features =
            planned.cost_model().Features(spec, choice.depth, k, survivors);
        sample.seconds = best_seconds;
        by_class[static_cast<size_t>(spec.backend)].rows.push_back(sample);
      }
    }
  }
  return true;
}

int Run(int argc, char** argv) {
  std::string out_path = "plan_coefficients.json";
  const char* smoke_env = std::getenv("PRJ_BENCH_SMOKE");
  bool smoke = smoke_env != nullptr && *smoke_env != '\0' &&
               std::strcmp(smoke_env, "0") != 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: calibrate [--smoke] [--out <path>]\n");
      return 2;
    }
  }

  const int count_small = smoke ? 300 : 2000;
  const int count_large = smoke ? 600 : 8000;
  const int queries_per_scenario = smoke ? 3 : 24;
  const int repeats = smoke ? 0 : 2;
  const std::vector<int> ks = smoke ? std::vector<int>{5}
                                    : std::vector<int>{5, 10, 25};

  std::vector<Scenario> scenarios = {
      {2, count_small, AccessKind::kDistance, true, 11},
      {2, count_large, AccessKind::kDistance, true, 12},
      {2, count_large, AccessKind::kDistance, false, 13},
      {2, count_small, AccessKind::kScore, false, 14},
  };
  if (!smoke) {
    scenarios.push_back({3, count_small, AccessKind::kDistance, true, 15});
    scenarios.push_back({3, count_small, AccessKind::kDistance, false, 16});
    scenarios.push_back({2, count_small, AccessKind::kDistance, false, 17});
    scenarios.push_back({2, count_large, AccessKind::kScore, true, 18});
  }

  std::printf("calibrate: %zu scenarios x %d queries x %zu k values%s\n",
              scenarios.size(), queries_per_scenario, ks.size(),
              smoke ? " (smoke)" : "");

  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  ClassSamples by_class[3];
  for (const Scenario& sc : scenarios) {
    SyntheticSpec spec;
    spec.dim = 2;
    spec.count = sc.count;
    spec.density = 50;
    spec.seed = sc.seed;
    const auto rels = GenerateProblem(sc.n, spec);

    PlannedEngineOptions options;
    options.sharded.partitions_per_relation = 2;
    options.sharded.scatter_threads = 4;
    auto planned = PlannedEngine::Create(rels, sc.kind, &scoring, options);
    if (!planned.ok()) {
      std::fprintf(stderr, "FAIL: PlannedEngine::Create: %s\n",
                   planned.status().ToString().c_str());
      return 1;
    }

    const double side = CubeSide(spec);
    Rng rng(sc.seed * 1000 + 7);
    std::vector<Vec> queries;
    queries.reserve(static_cast<size_t>(queries_per_scenario));
    for (int q = 0; q < queries_per_scenario; ++q) {
      if (sc.localized) {
        // Near a data point: the regime where pruning and the R-tree
        // frontier pay off.
        const auto& tuples = rels[0].tuples();
        const Tuple& anchor = tuples[rng.NextBounded(tuples.size())];
        Vec query = anchor.x;
        for (int d = 0; d < query.dim(); ++d) {
          query[d] += rng.Uniform(-0.05, 0.05) * side;
        }
        queries.push_back(std::move(query));
      } else {
        queries.push_back(rng.UniformInCube(2, -0.5 * side, 0.5 * side));
      }
    }
    if (!MeasureScenario(*planned, queries, ks, repeats, by_class)) return 1;
  }

  PlanCoefficients fitted;
  const char* class_names[3] = {"mono_rtree", "mono_presorted", "sharded"};
  const PlanBackend classes[3] = {PlanBackend::kMonoRTree,
                                  PlanBackend::kMonoPresorted,
                                  PlanBackend::kSharded};
  bool any_signal = false;
  for (int c = 0; c < 3; ++c) {
    const auto& rows = by_class[static_cast<size_t>(classes[c])].rows;
    auto coef = FitNonnegative(rows);
    // A class with no measured rows (e.g. mono_rtree under a score-only
    // calibration) keeps its hand-seeded default.
    bool nonzero = false;
    for (double v : coef) {
      if (!std::isfinite(v)) {
        std::fprintf(stderr, "FAIL: non-finite coefficient for %s\n",
                     class_names[c]);
        return 1;
      }
      if (v > 0.0) nonzero = true;
    }
    if (rows.empty() || !nonzero) {
      fitted.of(classes[c]) = PlanCoefficients::Defaults().of(classes[c]);
      std::printf("%-15s %5zu rows: kept defaults\n", class_names[c],
                  rows.size());
      continue;
    }
    any_signal = true;
    fitted.of(classes[c]).v = coef;
    std::printf("%-15s %5zu rows, mean |rel err| %.2f, coef [", class_names[c],
                rows.size(), MeanRelativeError(rows, coef));
    for (int j = 0; j < PlanFeatures::kCount; ++j) {
      std::printf("%s%.3g", j ? ", " : "", coef[static_cast<size_t>(j)]);
    }
    std::printf("]\n");
  }
  if (!any_signal) {
    std::fprintf(stderr, "FAIL: no plan class produced a usable fit\n");
    return 1;
  }

  const Status written = fitted.WriteFile(out_path);
  if (!written.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  // Round-trip sanity: the file the runtime will load reproduces the fit.
  auto reloaded = PlanCoefficients::LoadFile(out_path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "FAIL: reload: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }
  for (int c = 0; c < 3; ++c) {
    for (int j = 0; j < PlanFeatures::kCount; ++j) {
      const double a = fitted.of(classes[c]).v[static_cast<size_t>(j)];
      const double b = reloaded->of(classes[c]).v[static_cast<size_t>(j)];
      if (a != b) {
        std::fprintf(stderr, "FAIL: %s[%d] round-trips %.17g -> %.17g\n",
                     class_names[c], j, a, b);
        return 1;
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace prj

int main(int argc, char** argv) { return prj::Run(argc, argv); }
