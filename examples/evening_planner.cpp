// The paper's motivating scenario (§1): a smartphone user wants a
// restaurant, a movie theater and a hotel that are nearby, close to each
// other, and well rated. Runs the proximity rank join over the simulated
// city data sets (Appendix D.2 substitution) for all five cities and
// compares the paper's TBPA against the HRJN baseline on the same query.
//
//   $ ./examples/evening_planner
#include <cstdio>

#include "core/engine.h"
#include "workload/cities.h"

int main() {
  using namespace prj;
  const SumLogEuclideanScoring scoring(/*ws=*/1.0, /*wq=*/0.5, /*wmu=*/0.5);

  for (const std::string& code : CityCodes()) {
    const CityDataset city = MakeCityDataset(code);
    std::printf("=== %s, query at %s (%s) ===\n", city.city.c_str(),
                city.query.ToString().c_str(), city.landmark.c_str());

    ProxRJOptions options;
    options.k = 3;
    options.Apply(kTBPA);
    ExecStats stats;
    auto result = RunProxRJ(city.relations, AccessKind::kDistance, scoring,
                            city.query, options, &stats);
    if (!result.ok()) {
      std::fprintf(stderr, "failed: %s\n", result.status().ToString().c_str());
      return 1;
    }

    for (size_t rank = 0; rank < result->size(); ++rank) {
      const auto& rc = (*result)[rank];
      std::printf("  plan #%zu (score %.2f):\n", rank + 1, rc.score);
      const char* labels[] = {"hotel", "restaurant", "theater"};
      for (int j = 0; j < 3; ++j) {
        const Tuple& t = rc.tuples[static_cast<size_t>(j)];
        std::printf("    %-10s #%-4lld rating %.2f, %.2f km from %s\n",
                    labels[j], static_cast<long long>(t.id), t.score,
                    t.x.Distance(city.query), city.landmark.c_str());
      }
    }

    // Same query with the classical rank-join operator (HRJN == CBRR).
    ProxRJOptions baseline;
    baseline.k = 3;
    baseline.Apply(kCBRR);
    ExecStats base_stats;
    auto base = RunProxRJ(city.relations, AccessKind::kDistance, scoring,
                          city.query, baseline, &base_stats);
    if (!base.ok()) {
      std::fprintf(stderr, "failed: %s\n", base.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "  I/O: TBPA read %zu tuples, HRJN read %zu (%.0f%% saved)\n\n",
        stats.sum_depths, base_stats.sum_depths,
        100.0 * (1.0 - static_cast<double>(stats.sum_depths) /
                           static_cast<double>(base_stats.sum_depths)));
  }
  return 0;
}
