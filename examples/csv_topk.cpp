// Command-line utility: run proximity rank join over user-provided CSV
// relations (format: id,score,x0,...,x{d-1}).
//
//   $ ./examples/csv_topk [K] [file1.csv file2.csv ...]
//
// Without arguments it writes two demo CSV files to the working
// directory, joins them, and cleans up -- so it stays runnable in CI.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/engine.h"
#include "workload/csv.h"
#include "workload/synthetic.h"

int main(int argc, char** argv) {
  using namespace prj;

  int k = 5;
  std::vector<std::string> paths;
  bool demo_mode = argc < 3;
  if (!demo_mode) {
    k = std::atoi(argv[1]);
    if (k < 1) {
      std::fprintf(stderr, "usage: %s [K] [file1.csv file2.csv ...]\n",
                   argv[0]);
      return 1;
    }
    for (int a = 2; a < argc; ++a) paths.emplace_back(argv[a]);
  } else {
    std::printf("(demo mode: writing demo_r1.csv / demo_r2.csv)\n");
    SyntheticSpec spec;
    spec.dim = 2;
    spec.count = 200;
    spec.density = 50;
    for (int i = 0; i < 2; ++i) {
      spec.seed = 77 + static_cast<uint64_t>(i);
      const Relation rel =
          GenerateUniformRelation(spec, "demo_r" + std::to_string(i + 1));
      const std::string path = "demo_r" + std::to_string(i + 1) + ".csv";
      const Status st = SaveRelationCsv(rel, path);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      paths.push_back(path);
    }
  }

  std::vector<Relation> relations;
  for (const std::string& path : paths) {
    auto loaded = LoadRelationCsv(path, std::filesystem::path(path).stem());
    if (!loaded.ok()) {
      std::fprintf(stderr, "loading %s failed: %s\n", path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    std::printf("loaded %-20s %5zu tuples, d=%d\n", path.c_str(),
                loaded->size(), loaded->dim());
    relations.push_back(std::move(*loaded));
  }

  const Vec query(relations[0].dim(), 0.0);  // join around the origin
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  ProxRJOptions options;
  options.k = k;
  options.Apply(kTBPA);
  ExecStats stats;
  auto result = RunProxRJ(relations, AccessKind::kDistance, scoring, query,
                          options, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\ntop-%d combinations (query = origin):\n", k);
  for (size_t rank = 0; rank < result->size(); ++rank) {
    std::printf("  #%zu score %9.4f |", rank + 1, (*result)[rank].score);
    for (const Tuple& t : (*result)[rank].tuples) {
      std::printf(" id=%lld", static_cast<long long>(t.id));
    }
    std::printf("\n");
  }
  std::printf("sumDepths=%zu, CPU=%.1f ms (bound: %.1f ms)\n",
              stats.sum_depths, stats.total_seconds * 1e3,
              stats.bound_seconds * 1e3);

  if (demo_mode) {
    for (const std::string& path : paths) std::filesystem::remove(path);
  }
  return 0;
}
