// Server demo: the concurrent serving front end over the full QueryEngine
// stack -- a result cache over a sharded scatter-gather engine.
//
// batched_engine showed the amortized API -- one Engine::Create, then a
// serial RunBatch. This demo composes the serving stack on top: the
// relations are partitioned across a ShardedEngine (2 parts per relation,
// fan-out 4), wrapped in a CachedEngine, and served by a Server with a
// fixed worker pool -- all through the one QueryEngine interface:
//
//   1. async: Submit returns a std::future the caller collects later;
//   2. batch: SubmitBatch fans a whole batch across the pool and blocks
//      (repeated once, so the second burst hits the result cache);
//   3. stats + graceful shutdown: aggregate p50/p99 latency, queue
//      high-water mark, cache hits/misses/evictions, shard fan-out, and
//      a drain that finishes the backlog.
//
//   $ ./examples/server_demo
#include <cstdio>
#include <future>
#include <vector>

#include "cache/cached_engine.h"
#include "common/random.h"
#include "core/engine.h"
#include "server/server.h"
#include "shard/sharded_engine.h"

int main() {
  using namespace prj;

  // One city's worth of rated, located services (as in batched_engine).
  Rng rng(2026);
  Relation restaurants("restaurants", /*dim=*/2);
  Relation cafes("cafes", /*dim=*/2);
  for (int i = 0; i < 400; ++i) {
    restaurants.Add(i, rng.Uniform(0.2, 1.0), rng.UniformInCube(2, -2.0, 2.0));
    cafes.Add(i, rng.Uniform(0.2, 1.0), rng.UniformInCube(2, -2.0, 2.0));
  }
  const SumLogEuclideanScoring scoring(/*ws=*/1.0, /*wq=*/1.0, /*wmu=*/1.0);

  // Preprocess once: partition each relation into 2 parts and build the
  // 2x2 = 4 per-shard engines over shared per-partition R-trees. The
  // sharded engine's answers are bit-identical to a monolithic Engine --
  // with the scatter fanned across 2 threads per query and shards whose
  // corner bound cannot reach the running K-th score skipped outright.
  ShardedEngineOptions shard_opts;
  shard_opts.partitions_per_relation = 2;
  shard_opts.scheme = PartitionScheme::kStrTile;
  shard_opts.scatter_threads = 2;
  auto engine = ShardedEngine::Create({restaurants, cafes},
                                      AccessKind::kDistance, &scoring,
                                      shard_opts);
  if (!engine.ok()) {
    std::fprintf(stderr, "ShardedEngine::Create failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  // Decorate with a query-result cache (engines are immutable, so cached
  // answers never go stale) and stand up the service: 4 workers pulling
  // from a bounded request queue, all through the QueryEngine interface.
  QueryCacheOptions cache_opts;
  cache_opts.capacity = 256;
  CachedEngine cached(&*engine, cache_opts);
  ServerOptions server_opts;
  server_opts.num_workers = 4;
  server_opts.queue_capacity = 64;
  Server server(&cached, server_opts);
  std::printf(
      "server up: %d workers, queue capacity %zu, shard fan-out %zu "
      "(%u parts/relation, str-tile), cache capacity %zu\n\n",
      server.num_workers(), server_opts.queue_capacity, cached.fan_out(),
      engine->partitions_per_relation(), cache_opts.capacity);

  // 1) Async: submit two users' queries, do other work, collect later.
  QueryRequest first;
  first.query = Vec{0.3, -0.4};
  first.options.k = 3;
  first.options.Apply(kTBPA);
  QueryRequest second;
  second.query = Vec{-1.0, 0.8};
  second.options.k = 3;
  second.options.Apply(kTBPA);
  std::future<QueryResult> f1 = server.Submit(first);
  std::future<QueryResult> f2 = server.Submit(second);
  for (auto* f : {&f1, &f2}) {
    const QueryResult qr = f->get();
    if (!qr.ok()) {
      std::fprintf(stderr, "async query failed: %s\n",
                   qr.status.ToString().c_str());
      return 1;
    }
    std::printf("async result: best pair score %.3f (sumDepths=%zu)\n",
                qr.combinations.front().score, qr.stats.sum_depths);
  }

  // 2) Batch: a burst of users, fanned across the pool, results in order.
  //    The same burst runs twice -- the second round is answered from the
  //    result cache (watch the hits counter below).
  std::vector<QueryRequest> burst;
  for (int user = 0; user < 12; ++user) {
    QueryRequest req;
    req.query = rng.UniformInCube(2, -1.5, 1.5);
    req.options.k = 3;
    req.options.Apply(kTBPA);
    burst.push_back(std::move(req));
  }
  for (int round = 0; round < 2; ++round) {
    const auto results = server.SubmitBatch(burst);
    for (size_t user = 0; user < results.size(); ++user) {
      const QueryResult& qr = results[user];
      if (!qr.ok()) {
        std::fprintf(stderr, "round %d user %zu failed: %s\n", round, user,
                     qr.status.ToString().c_str());
        return 1;
      }
      if (round > 0) continue;  // print each user once
      const ResultCombination& best = qr.combinations.front();
      std::printf("user %2zu: restaurant #%3lld + cafe #%3lld  score %6.3f\n",
                  user, static_cast<long long>(best.tuples[0].id),
                  static_cast<long long>(best.tuples[1].id), best.score);
    }
  }

  // 3) Aggregate stats, then a graceful drain: queued work is finished,
  //    and a Submit after shutdown fails fast with kUnavailable instead
  //    of hanging. Cache counters and the shard fan-out come from the
  //    engine stack through the QueryEngine interface.
  const ServerStats stats = server.Stats();
  std::printf(
      "\nstats: served=%llu failed=%llu rejected=%llu  "
      "p50=%.3f ms p99=%.3f ms  queue high-water=%zu\n",
      static_cast<unsigned long long>(stats.queries_served),
      static_cast<unsigned long long>(stats.queries_failed),
      static_cast<unsigned long long>(stats.queries_rejected),
      stats.latency_p50_seconds * 1e3, stats.latency_p99_seconds * 1e3,
      stats.queue_high_water);
  std::printf(
      "cache: hits=%llu misses=%llu evictions=%llu  shard fan-out=%zu\n",
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_misses),
      static_cast<unsigned long long>(stats.cache_evictions),
      stats.shard_fan_out);
  std::printf(
      "scatter: %u threads/query, shards pruned=%llu, gather=%.3f ms\n",
      engine->scatter_threads(),
      static_cast<unsigned long long>(stats.shards_pruned),
      stats.gather_seconds * 1e3);

  server.Shutdown(Server::DrainMode::kDrain);
  auto late = server.Submit(first);
  std::printf("after shutdown, Submit resolves immediately: %s\n",
              late.get().status.ToString().c_str());
  return 0;
}
