// Server demo: the concurrent serving front end over the full QueryEngine
// stack -- a result cache over a LIVE engine over a sharded scatter-gather
// base, i.e. Cached(Live(Sharded(...))).
//
// batched_engine showed the amortized API -- one Engine::Create, then a
// serial RunBatch. This demo composes the whole serving stack on top, all
// through the one QueryEngine interface:
//
//   1. async: Submit returns a std::future the caller collects later;
//   2. batch + live update: a burst runs twice around a mid-run
//      Apply(UpdateBatch) -- a hot new restaurant opens and a cafe closes.
//      The update bumps the data epoch, so round 2's queries miss the
//      (epoch-keyed) cache, re-execute against base + delta, and see the
//      new data immediately; the warm pre-update entries simply age out;
//   3. stats + graceful shutdown: aggregate p50/p99 latency, cache
//      hits/misses, shard fan-out, and the live gauges -- data epoch,
//      pending delta tuples/tombstones, compactions -- then a drain.
//
//   $ ./examples/server_demo
#include <cstdio>
#include <future>
#include <vector>

#include "cache/cached_engine.h"
#include "common/random.h"
#include "core/engine.h"
#include "live/live_engine.h"
#include "server/server.h"
#include "shard/sharded_engine.h"

int main() {
  using namespace prj;

  // One city's worth of rated, located services (as in batched_engine).
  Rng rng(2026);
  Relation restaurants("restaurants", /*dim=*/2);
  Relation cafes("cafes", /*dim=*/2);
  for (int i = 0; i < 400; ++i) {
    restaurants.Add(i, rng.Uniform(0.2, 1.0), rng.UniformInCube(2, -2.0, 2.0));
    cafes.Add(i, rng.Uniform(0.2, 1.0), rng.UniformInCube(2, -2.0, 2.0));
  }
  const SumLogEuclideanScoring scoring(/*ws=*/1.0, /*wq=*/1.0, /*wmu=*/1.0);

  // The base tier: each relation partitioned into 2 parts, 2x2 = 4
  // per-shard engines, parallel pruned scatter -- bit-identical to a
  // monolithic Engine. The LIVE tier wraps it: inserts/deletes append to
  // delta logs and tombstones, every query still answers exactly for the
  // snapshot it captured, and a background compaction folds the deltas
  // back into a freshly built sharded base past the threshold.
  ShardedEngineOptions shard_opts;
  shard_opts.partitions_per_relation = 2;
  shard_opts.scheme = PartitionScheme::kStrTile;
  shard_opts.scatter_threads = 2;
  LiveEngineOptions live_opts;
  live_opts.compact_threshold = 64;
  auto live = LiveEngine::Create(
      {restaurants, cafes}, AccessKind::kDistance, &scoring,
      LiveEngine::ShardedFactory(AccessKind::kDistance, &scoring, shard_opts),
      live_opts);
  if (!live.ok()) {
    std::fprintf(stderr, "LiveEngine::Create failed: %s\n",
                 live.status().ToString().c_str());
    return 1;
  }

  // Decorate with a query-result cache -- safe over live data, because the
  // cache key carries the data epoch (updates make stale entries
  // unaddressable) -- and stand up the service: 4 workers pulling from a
  // bounded request queue.
  QueryCacheOptions cache_opts;
  cache_opts.capacity = 256;
  CachedEngine cached(&**live, cache_opts);
  ServerOptions server_opts;
  server_opts.num_workers = 4;
  server_opts.queue_capacity = 64;
  Server server(&cached, server_opts);
  std::printf(
      "server up: %d workers, queue capacity %zu, "
      "Cached(Live(Sharded)) fan-out %zu, cache capacity %zu, "
      "compact threshold %zu\n\n",
      server.num_workers(), server_opts.queue_capacity, cached.fan_out(),
      cache_opts.capacity, live_opts.compact_threshold);

  // 1) Async: submit two users' queries, do other work, collect later.
  QueryRequest first;
  first.query = Vec{0.3, -0.4};
  first.options.k = 3;
  first.options.Apply(kTBPA);
  QueryRequest second;
  second.query = Vec{-1.0, 0.8};
  second.options.k = 3;
  second.options.Apply(kTBPA);
  std::future<QueryResult> f1 = server.Submit(first);
  std::future<QueryResult> f2 = server.Submit(second);
  for (auto* f : {&f1, &f2}) {
    const QueryResult qr = f->get();
    if (!qr.ok()) {
      std::fprintf(stderr, "async query failed: %s\n",
                   qr.status.ToString().c_str());
      return 1;
    }
    std::printf("async result: best pair score %.3f (sumDepths=%zu)\n",
                qr.combinations.front().score, qr.stats.sum_depths);
  }

  // 2) Batch around a live update: the same burst runs before and after a
  //    mid-run Apply. Round 1 fills the cache at epoch 1; the update bumps
  //    the epoch, so round 2 re-executes every query (fresh misses) and
  //    observes the new city immediately.
  std::vector<QueryRequest> burst;
  for (int user = 0; user < 12; ++user) {
    QueryRequest req;
    req.query = rng.UniformInCube(2, -1.5, 1.5);
    req.options.k = 3;
    req.options.Apply(kTBPA);
    burst.push_back(std::move(req));
  }
  for (int round = 0; round < 2; ++round) {
    const auto results = server.SubmitBatch(burst);
    for (size_t user = 0; user < results.size(); ++user) {
      const QueryResult& qr = results[user];
      if (!qr.ok()) {
        std::fprintf(stderr, "round %d user %zu failed: %s\n", round, user,
                     qr.status.ToString().c_str());
        return 1;
      }
      if (round > 0) continue;  // print each user once
      const ResultCombination& best = qr.combinations.front();
      std::printf("user %2zu: restaurant #%3lld + cafe #%3lld  score %6.3f "
                  "(epoch %llu)\n",
                  user, static_cast<long long>(best.tuples[0].id),
                  static_cast<long long>(best.tuples[1].id), best.score,
                  static_cast<unsigned long long>(qr.stats.data_epoch));
    }
    if (round == 0) {
      // The city changes mid-run: a five-star restaurant opens downtown,
      // a cafe closes. One atomic batch; epoch 1 -> 2.
      UpdateBatch update;
      update.relations.resize(2);
      update.relations[0].inserts.push_back(
          Tuple{/*id=*/9000, /*score=*/1.0, Vec{0.0, 0.0}});
      update.relations[1].deletes.push_back(7);
      const Status applied = (*live)->Apply(update);
      if (!applied.ok()) {
        std::fprintf(stderr, "Apply failed: %s\n",
                     applied.ToString().c_str());
        return 1;
      }
      std::printf(
          "\n-- live update applied: +restaurant #9000 (score 1.0 at the "
          "center), -cafe #7; epoch is now %llu --\n\n",
          static_cast<unsigned long long>((*live)->live_counters().epoch));
    }
  }

  // Round 3: same burst again, same epoch -- now the epoch-2 entries are
  // warm and every query is a cache hit.
  for (const QueryResult& qr : server.SubmitBatch(burst)) {
    if (!qr.ok()) {
      std::fprintf(stderr, "round 2 failed: %s\n", qr.status.ToString().c_str());
      return 1;
    }
  }

  // 3) Aggregate stats, then a graceful drain. Cache counters, shard
  //    fan-out and the live gauges all surface through the QueryEngine
  //    interface; note the round-2 misses (the epoch moved) and the
  //    delta tuples/tombstones still pending compaction.
  const ServerStats stats = server.Stats();
  std::printf(
      "stats: served=%llu failed=%llu rejected=%llu  "
      "p50=%.3f ms p99=%.3f ms  queue high-water=%zu\n",
      static_cast<unsigned long long>(stats.queries_served),
      static_cast<unsigned long long>(stats.queries_failed),
      static_cast<unsigned long long>(stats.queries_rejected),
      stats.latency_p50_seconds * 1e3, stats.latency_p99_seconds * 1e3,
      stats.queue_high_water);
  std::printf(
      "cache: hits=%llu misses=%llu evictions=%llu (~%zu KB)  "
      "fan-out=%zu  shards pruned=%llu\n",
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_misses),
      static_cast<unsigned long long>(stats.cache_evictions),
      cached.cache().ApproxBytes() / 1024, stats.shard_fan_out,
      static_cast<unsigned long long>(stats.shards_pruned));
  std::printf(
      "live: epoch=%llu delta tuples=%llu tombstones=%llu "
      "compactions=%llu delta shards pruned=%llu\n",
      static_cast<unsigned long long>(stats.data_epoch),
      static_cast<unsigned long long>(stats.delta_tuples),
      static_cast<unsigned long long>(stats.live_tombstones),
      static_cast<unsigned long long>(stats.compactions),
      static_cast<unsigned long long>(stats.delta_shards_pruned));

  server.Shutdown(Server::DrainMode::kDrain);
  auto late = server.Submit(first);
  std::printf("after shutdown, Submit resolves immediately: %s\n",
              late.get().status.ToString().c_str());
  return 0;
}
