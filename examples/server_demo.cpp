// Server demo: the concurrent serving front end over one shared Engine.
//
// batched_engine showed the amortized API -- one Engine::Create, then a
// serial RunBatch. This demo adds the serving layer on top: a Server with
// a fixed worker pool answering queries concurrently, three ways --
//
//   1. async: Submit returns a std::future the caller collects later;
//   2. batch: SubmitBatch fans a whole batch across the pool and blocks;
//   3. stats + graceful shutdown: aggregate p50/p99 latency, queue
//      high-water mark, and a drain that finishes the backlog.
//
//   $ ./examples/server_demo
#include <cstdio>
#include <future>
#include <vector>

#include "common/random.h"
#include "core/engine.h"
#include "server/server.h"

int main() {
  using namespace prj;

  // One city's worth of rated, located services (as in batched_engine).
  Rng rng(2026);
  Relation restaurants("restaurants", /*dim=*/2);
  Relation cafes("cafes", /*dim=*/2);
  for (int i = 0; i < 400; ++i) {
    restaurants.Add(i, rng.Uniform(0.2, 1.0), rng.UniformInCube(2, -2.0, 2.0));
    cafes.Add(i, rng.Uniform(0.2, 1.0), rng.UniformInCube(2, -2.0, 2.0));
  }
  const SumLogEuclideanScoring scoring(/*ws=*/1.0, /*wq=*/1.0, /*wmu=*/1.0);

  // Preprocess once; the engine stays immutable and shared from here on.
  auto engine = Engine::Create({restaurants, cafes}, AccessKind::kDistance,
                               &scoring);
  if (!engine.ok()) {
    std::fprintf(stderr, "Engine::Create failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  // Stand up the service: 4 workers pulling from a bounded request queue.
  ServerOptions server_opts;
  server_opts.num_workers = 4;
  server_opts.queue_capacity = 64;
  Server server(&*engine, server_opts);
  std::printf("server up: %d workers, queue capacity %zu\n\n",
              server.num_workers(), server_opts.queue_capacity);

  // 1) Async: submit two users' queries, do other work, collect later.
  QueryRequest first;
  first.query = Vec{0.3, -0.4};
  first.options.k = 3;
  first.options.Apply(kTBPA);
  QueryRequest second;
  second.query = Vec{-1.0, 0.8};
  second.options.k = 3;
  second.options.Apply(kTBPA);
  std::future<QueryResult> f1 = server.Submit(first);
  std::future<QueryResult> f2 = server.Submit(second);
  for (auto* f : {&f1, &f2}) {
    const QueryResult qr = f->get();
    if (!qr.ok()) {
      std::fprintf(stderr, "async query failed: %s\n",
                   qr.status.ToString().c_str());
      return 1;
    }
    std::printf("async result: best pair score %.3f (sumDepths=%zu)\n",
                qr.combinations.front().score, qr.stats.sum_depths);
  }

  // 2) Batch: a burst of users, fanned across the pool, results in order.
  std::vector<QueryRequest> burst;
  for (int user = 0; user < 12; ++user) {
    QueryRequest req;
    req.query = rng.UniformInCube(2, -1.5, 1.5);
    req.options.k = 3;
    req.options.Apply(kTBPA);
    burst.push_back(std::move(req));
  }
  const auto results = server.SubmitBatch(burst);
  for (size_t user = 0; user < results.size(); ++user) {
    const QueryResult& qr = results[user];
    if (!qr.ok()) {
      std::fprintf(stderr, "user %zu failed: %s\n", user,
                   qr.status.ToString().c_str());
      return 1;
    }
    const ResultCombination& best = qr.combinations.front();
    std::printf("user %2zu: restaurant #%3lld + cafe #%3lld  score %6.3f\n",
                user, static_cast<long long>(best.tuples[0].id),
                static_cast<long long>(best.tuples[1].id), best.score);
  }

  // 3) Aggregate stats, then a graceful drain: queued work is finished,
  //    and a Submit after shutdown fails fast with kUnavailable instead
  //    of hanging.
  const ServerStats stats = server.Stats();
  std::printf(
      "\nstats: served=%llu failed=%llu rejected=%llu  "
      "p50=%.3f ms p99=%.3f ms  queue high-water=%zu\n",
      static_cast<unsigned long long>(stats.queries_served),
      static_cast<unsigned long long>(stats.queries_failed),
      static_cast<unsigned long long>(stats.queries_rejected),
      stats.latency_p50_seconds * 1e3, stats.latency_p99_seconds * 1e3,
      stats.queue_high_water);

  server.Shutdown(Server::DrainMode::kDrain);
  auto late = server.Submit(first);
  std::printf("after shutdown, Submit resolves immediately: %s\n",
              late.get().status.ToString().c_str());
  return 0;
}
