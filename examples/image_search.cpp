// Multimedia scenario from the paper's introduction: "requesting similar
// images from different repositories given a sample image". Each
// repository tuple carries an 8-D feature vector (think: a tiny color/
// texture descriptor) and a quality score; the query vector is the
// descriptor of the sample image. Distance-based access models each
// repository's similarity search API.
//
// Also demonstrates score-based access over the same repositories: "give
// me the best-rated images first" with the proximity handled by the
// Appendix C bounds.
//
//   $ ./examples/image_search
#include <cstdio>

#include "common/random.h"
#include "core/engine.h"

namespace {

// A repository of images with descriptors clustered around a few visual
// themes. Returns descriptors in [0,1]^8.
prj::Relation MakeRepository(const std::string& name, uint64_t seed,
                             int count) {
  using namespace prj;
  Rng rng(seed);
  std::vector<Vec> themes;
  for (int t = 0; t < 4; ++t) themes.push_back(rng.UniformInCube(8, 0.0, 1.0));
  Relation repo(name, 8);
  for (int i = 0; i < count; ++i) {
    const Vec& theme = themes[rng.NextBounded(themes.size())];
    Vec descriptor(8);
    for (int j = 0; j < 8; ++j) {
      double v = theme[j] + 0.08 * rng.NextGaussian();
      descriptor[j] = std::min(1.0, std::max(0.0, v));
    }
    repo.Add(i, rng.Uniform(0.3, 1.0), descriptor);
  }
  return repo;
}

}  // namespace

int main() {
  using namespace prj;
  const std::vector<Relation> repos = {
      MakeRepository("flickr_like", 1001, 600),
      MakeRepository("stock_photos", 1002, 400),
      MakeRepository("news_archive", 1003, 500),
  };

  // The sample image's descriptor.
  Rng rng(42);
  Vec sample = rng.UniformInCube(8, 0.2, 0.8);

  // Proximity to the sample matters most; mutual similarity keeps the
  // result set visually coherent.
  const SumLogEuclideanScoring scoring(/*ws=*/0.5, /*wq=*/2.0, /*wmu=*/1.0);

  std::printf("Query descriptor: %s\n\n", sample.ToString().c_str());

  ProxRJOptions options;
  options.k = 5;
  options.Apply(kTBPA);
  ExecStats stats;
  auto result = RunProxRJ(repos, AccessKind::kDistance, scoring, sample,
                          options, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("Top-5 coherent triples (one image per repository), "
              "similarity-first access:\n");
  for (size_t rank = 0; rank < result->size(); ++rank) {
    const auto& rc = (*result)[rank];
    std::printf("  #%zu score %8.3f |", rank + 1, rc.score);
    for (size_t j = 0; j < rc.tuples.size(); ++j) {
      std::printf(" %s/img%lld (q=%.2f, d=%.3f)",
                  repos[j].name().c_str(),
                  static_cast<long long>(rc.tuples[j].id), rc.tuples[j].score,
                  rc.tuples[j].x.Distance(sample));
    }
    std::printf("\n");
  }
  std::printf("  I/O: read %zu of %zu descriptors; %llu combinations "
              "formed\n\n",
              stats.sum_depths,
              repos[0].size() + repos[1].size() + repos[2].size(),
              static_cast<unsigned long long>(stats.combinations_formed));

  // Same repositories under score-based access (best-rated first) --
  // exercised with the Appendix C tight bound.
  ProxRJOptions by_score = options;
  ExecStats score_stats;
  auto score_result = RunProxRJ(repos, AccessKind::kScore, scoring, sample,
                                by_score, &score_stats);
  if (!score_result.ok()) {
    std::fprintf(stderr, "failed: %s\n",
                 score_result.status().ToString().c_str());
    return 1;
  }
  std::printf("Score-based access returns the same top-5 (scores: ");
  for (size_t i = 0; i < score_result->size(); ++i) {
    std::printf("%s%.3f", i ? ", " : "", (*score_result)[i].score);
  }
  std::printf(") at sumDepths=%zu.\n", score_stats.sum_depths);
  return 0;
}
