// Pipelined consumption: ProxRJStream emits one certified combination per
// Next() call, reading inputs lazily. This is how the operator would sit
// inside a query plan (compare HRJN's GetNext interface). The example
// shows input consumption growing with each emitted result -- stop early,
// pay less.
//
//   $ ./examples/streaming_results
#include <cstdio>

#include "core/stream.h"
#include "workload/synthetic.h"

int main() {
  using namespace prj;

  SyntheticSpec spec;
  spec.dim = 2;
  spec.density = 50;
  spec.count = 2000;
  spec.seed = 2024;
  const auto relations = GenerateProblem(2, spec);
  const Vec query(2, 0.0);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);

  ProxRJStreamOptions options;
  options.Apply(kTBPA);
  ProxRJStream stream(MakeSources(relations, AccessKind::kDistance, query),
                      &scoring, query, options);
  const Status st = stream.Open();
  if (!st.ok()) {
    std::fprintf(stderr, "Open failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("rank  score      tuples            input consumed so far\n");
  for (int rank = 1; rank <= 15; ++rank) {
    auto rc = stream.Next();
    if (!rc) break;
    std::printf("%4d  %9.4f  (%4lld, %4lld)     %zu of %zu tuples\n", rank,
                rc->score, static_cast<long long>(rc->tuples[0].id),
                static_cast<long long>(rc->tuples[1].id), stream.SumDepths(),
                2 * static_cast<size_t>(spec.count));
  }
  std::printf(
      "\nThe stream certified each result against the tight bound before\n"
      "emitting it; consuming fewer results would have read fewer tuples.\n");
  return 0;
}
