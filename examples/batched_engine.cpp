// Batched engine: serve many users' top-K queries from one shared catalog.
//
// Where quickstart builds its access paths from scratch for a single call,
// this demo constructs an Engine once -- the per-relation R-trees are
// built at that point -- and then answers a batch of queries, one per
// user location, with no further index work. This is the amortized API a
// multi-query deployment (or the planned server front end) sits on.
//
//   $ ./examples/batched_engine
#include <cstdio>

#include "common/random.h"
#include "core/engine.h"

int main() {
  using namespace prj;

  // One city's worth of rated, located services.
  Rng rng(2026);
  Relation restaurants("restaurants", /*dim=*/2);
  Relation cafes("cafes", /*dim=*/2);
  for (int i = 0; i < 400; ++i) {
    restaurants.Add(i, rng.Uniform(0.2, 1.0), rng.UniformInCube(2, -2.0, 2.0));
    cafes.Add(i, rng.Uniform(0.2, 1.0), rng.UniformInCube(2, -2.0, 2.0));
  }

  const SumLogEuclideanScoring scoring(/*ws=*/1.0, /*wq=*/1.0, /*wmu=*/1.0);

  // Preprocess once: build the shared R-tree catalog.
  auto engine = Engine::Create({restaurants, cafes}, AccessKind::kDistance,
                               &scoring);
  if (!engine.ok()) {
    std::fprintf(stderr, "Engine::Create failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  // A batch of users, each asking for the best (restaurant, cafe) pair
  // near where they stand.
  std::vector<QueryRequest> batch;
  for (int user = 0; user < 5; ++user) {
    QueryRequest req;
    req.query = rng.UniformInCube(2, -1.5, 1.5);
    req.options.k = 3;
    req.options.Apply(kTBPA);
    batch.push_back(std::move(req));
  }

  const auto results = engine->RunBatch(batch);
  for (size_t user = 0; user < results.size(); ++user) {
    const QueryResult& qr = results[user];
    if (!qr.ok()) {
      std::fprintf(stderr, "user %zu failed: %s\n", user,
                   qr.status.ToString().c_str());
      return 1;
    }
    std::printf("user %zu at %s  (sumDepths=%zu)\n", user,
                batch[user].query.ToString().c_str(), qr.stats.sum_depths);
    for (size_t rank = 0; rank < qr.combinations.size(); ++rank) {
      const ResultCombination& rc = qr.combinations[rank];
      std::printf("  #%zu score %7.3f | restaurant #%lld + cafe #%lld\n",
                  rank + 1, rc.score,
                  static_cast<long long>(rc.tuples[0].id),
                  static_cast<long long>(rc.tuples[1].id));
    }
  }
  return 0;
}
