// Quickstart: the smallest end-to-end use of the proxrank library.
//
// Builds two tiny relations of scored, located objects, asks for the top-3
// combinations near a query point, and prints them together with the
// operator's cost statistics.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/engine.h"

int main() {
  using namespace prj;

  // Two relations: coffee shops and bookstores, each tuple carrying a
  // rating in (0, 1] and a 2-D position.
  Relation coffee("coffee_shops", /*dim=*/2);
  coffee.Add(0, 0.9, Vec{0.2, 0.1});
  coffee.Add(1, 0.6, Vec{-0.3, 0.4});
  coffee.Add(2, 1.0, Vec{2.0, 2.0});
  coffee.Add(3, 0.8, Vec{0.5, -0.6});

  Relation books("bookstores", /*dim=*/2);
  books.Add(0, 0.7, Vec{0.3, 0.2});
  books.Add(1, 1.0, Vec{-1.5, 1.0});
  books.Add(2, 0.9, Vec{0.4, -0.5});

  // The user stands at the origin. Weights: how much the rating, the
  // distance from the user, and the mutual distance matter (paper eq. (2)).
  const Vec where_i_am{0.0, 0.0};
  const SumLogEuclideanScoring scoring(/*ws=*/1.0, /*wq=*/1.0, /*wmu=*/1.0);

  ProxRJOptions options;
  options.k = 3;
  options.Apply(kTBPA);  // tight bound + adaptive pulling: the paper's best

  ExecStats stats;
  auto result = RunProxRJ({coffee, books}, AccessKind::kDistance, scoring,
                          where_i_am, options, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "ProxRJ failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("Top-%d (coffee shop, bookstore) pairs near %s:\n", options.k,
              where_i_am.ToString().c_str());
  for (size_t rank = 0; rank < result->size(); ++rank) {
    const ResultCombination& rc = (*result)[rank];
    std::printf(
        "  #%zu  score %7.3f | coffee #%lld (rating %.1f at %s) + "
        "bookstore #%lld (rating %.1f at %s)\n",
        rank + 1, rc.score, static_cast<long long>(rc.tuples[0].id),
        rc.tuples[0].score, rc.tuples[0].x.ToString().c_str(),
        static_cast<long long>(rc.tuples[1].id), rc.tuples[1].score,
        rc.tuples[1].x.ToString().c_str());
  }
  std::printf(
      "\nCost: sumDepths=%zu (of %zu+%zu available), "
      "combinations formed=%llu, bound updates=%llu\n",
      stats.sum_depths, coffee.size(), books.size(),
      static_cast<unsigned long long>(stats.combinations_formed),
      static_cast<unsigned long long>(stats.bound_stats.bound_updates));
  return 0;
}
